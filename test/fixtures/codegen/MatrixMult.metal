/* streamit_gpu artifact (metal)
 * quality: heuristic (completed)
 * II: 224819 (lower bound 224819, binding no_wrap)
 * schedule signature: 346d4e6ed2c6446debbd0a7f69fde47f
 */
#include <metal_stdlib>
using namespace metal;

static inline int region_0(int it) { return ((it % 7) + 7) % 7 * 32768; }
static inline int region_1(int it) { return ((it % 7) + 7) % 7 * 524288; }
static inline int region_2(int it) { return ((it % 7) + 7) % 7 * 262144; }
static inline int region_3(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_4(int it) { return ((it % 7) + 7) % 7 * 32768; }
static inline int region_5(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_6(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_7(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_8(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_9(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_10(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_11(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_12(int it) { return ((it % 7) + 7) % 7 * 4096; }
static inline int region_13(int it) { return ((it % 7) + 7) % 7 * 262144; }
static inline int region_14(int it) { return ((it % 7) + 7) % 7 * 0; }

static void work_split_opsplit(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t8; _push++;
  float _t9 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t9; _push++;
  float _t10 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t10; _push++;
  float _t11 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t11; _push++;
  float _t12 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t12; _push++;
  float _t13 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t13; _push++;
  float _t14 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t14; _push++;
  float _t15 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t15; _push++;
  float _t16 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t16; _push++;
  float _t17 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t17; _push++;
  float _t18 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t18; _push++;
  float _t19 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t19; _push++;
  float _t20 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t20; _push++;
  float _t21 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t21; _push++;
  float _t22 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t22; _push++;
  float _t23 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t23; _push++;
  float _t24 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t24; _push++;
  float _t25 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t25; _push++;
  float _t26 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t26; _push++;
  float _t27 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t27; _push++;
  float _t28 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t28; _push++;
  float _t29 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t29; _push++;
  float _t30 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t30; _push++;
  float _t31 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t31; _push++;
  float _t32 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t32; _push++;
  float _t33 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t33; _push++;
  float _t34 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t34; _push++;
  float _t35 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t35; _push++;
  float _t36 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t36; _push++;
  float _t37 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t37; _push++;
  float _t38 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t38; _push++;
  float _t39 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t39; _push++;
  float _t40 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t40; _push++;
  float _t41 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t41; _push++;
  float _t42 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t42; _push++;
  float _t43 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t43; _push++;
  float _t44 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t44; _push++;
  float _t45 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t45; _push++;
  float _t46 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t46; _push++;
  float _t47 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t47; _push++;
  float _t48 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t48; _push++;
  float _t49 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t49; _push++;
  float _t50 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t50; _push++;
  float _t51 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t51; _push++;
  float _t52 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t52; _push++;
  float _t53 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t53; _push++;
  float _t54 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t54; _push++;
  float _t55 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t55; _push++;
  float _t56 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t56; _push++;
  float _t57 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t57; _push++;
  float _t58 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t58; _push++;
  float _t59 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t59; _push++;
  float _t60 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t60; _push++;
  float _t61 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t61; _push++;
  float _t62 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t62; _push++;
  float _t63 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t63; _push++;
  float _t64 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t64; _push++;
  float _t65 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t65; _push++;
  float _t66 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t66; _push++;
  float _t67 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t67; _push++;
  float _t68 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t68; _push++;
  float _t69 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t69; _push++;
  float _t70 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t70; _push++;
  float _t71 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t71; _push++;
  float _t72 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t72; _push++;
  float _t73 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t73; _push++;
  float _t74 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t74; _push++;
  float _t75 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t75; _push++;
  float _t76 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t76; _push++;
  float _t77 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t77; _push++;
  float _t78 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t78; _push++;
  float _t79 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t79; _push++;
  float _t80 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t80; _push++;
  float _t81 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t81; _push++;
  float _t82 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t82; _push++;
  float _t83 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t83; _push++;
  float _t84 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t84; _push++;
  float _t85 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t85; _push++;
  float _t86 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t86; _push++;
  float _t87 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t87; _push++;
  float _t88 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t88; _push++;
  float _t89 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t89; _push++;
  float _t90 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t90; _push++;
  float _t91 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t91; _push++;
  float _t92 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t92; _push++;
  float _t93 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t93; _push++;
  float _t94 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t94; _push++;
  float _t95 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t95; _push++;
  float _t96 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t96; _push++;
  float _t97 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t97; _push++;
  float _t98 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t98; _push++;
  float _t99 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t99; _push++;
  float _t100 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t100; _push++;
  float _t101 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t101; _push++;
  float _t102 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t102; _push++;
  float _t103 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t103; _push++;
  float _t104 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t104; _push++;
  float _t105 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t105; _push++;
  float _t106 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t106; _push++;
  float _t107 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t107; _push++;
  float _t108 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t108; _push++;
  float _t109 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t109; _push++;
  float _t110 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t110; _push++;
  float _t111 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t111; _push++;
  float _t112 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t112; _push++;
  float _t113 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t113; _push++;
  float _t114 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t114; _push++;
  float _t115 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t115; _push++;
  float _t116 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t116; _push++;
  float _t117 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t117; _push++;
  float _t118 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t118; _push++;
  float _t119 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t119; _push++;
  float _t120 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t120; _push++;
  float _t121 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t121; _push++;
  float _t122 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t122; _push++;
  float _t123 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t123; _push++;
  float _t124 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t124; _push++;
  float _t125 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t125; _push++;
  float _t126 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t126; _push++;
  float _t127 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t127; _push++;
  float _t128 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t128; _push++;
  (void)_pop; (void)_push;
}

static void work_join_opsplit(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t8; _push++;
  float _t9 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t9; _push++;
  float _t10 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t10; _push++;
  float _t11 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t11; _push++;
  float _t12 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t12; _push++;
  float _t13 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t13; _push++;
  float _t14 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t14; _push++;
  float _t15 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t15; _push++;
  float _t16 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t16; _push++;
  (void)_pop; (void)_push;
}

static void work_RepeatRowsA(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float m[64] = {0};
  for (int j = 0; j < 64; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
    m[j] = _t1;
  }
  for (int r = 0; r < 8; r++) {
    for (int t = 0; t < 8; t++) {
      for (int c = 0; c < 8; c++) {
        out[(128 * (_push) + (tid / 128) * 128 * 512 + (tid % 128))] = m[((r * 8) + c)]; _push++;
      }
    }
  }
  (void)_pop; (void)_push;
}

static void work_split_transpose_B(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 8 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 8 + (tid % 128))] = _t8; _push++;
  (void)_pop; (void)_push;
}

static void work_join_transpose_B(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t8; _push++;
  float _t9 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t9; _push++;
  float _t10 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t10; _push++;
  float _t11 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t11; _push++;
  float _t12 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t12; _push++;
  float _t13 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t13; _push++;
  float _t14 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t14; _push++;
  float _t15 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t15; _push++;
  float _t16 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t16; _push++;
  float _t17 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t17; _push++;
  float _t18 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t18; _push++;
  float _t19 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t19; _push++;
  float _t20 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t20; _push++;
  float _t21 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t21; _push++;
  float _t22 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t22; _push++;
  float _t23 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t23; _push++;
  float _t24 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t24; _push++;
  float _t25 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t25; _push++;
  float _t26 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t26; _push++;
  float _t27 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t27; _push++;
  float _t28 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t28; _push++;
  float _t29 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t29; _push++;
  float _t30 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t30; _push++;
  float _t31 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t31; _push++;
  float _t32 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t32; _push++;
  float _t33 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t33; _push++;
  float _t34 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t34; _push++;
  float _t35 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t35; _push++;
  float _t36 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t36; _push++;
  float _t37 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t37; _push++;
  float _t38 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t38; _push++;
  float _t39 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t39; _push++;
  float _t40 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t40; _push++;
  float _t41 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t41; _push++;
  float _t42 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t42; _push++;
  float _t43 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t43; _push++;
  float _t44 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t44; _push++;
  float _t45 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t45; _push++;
  float _t46 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t46; _push++;
  float _t47 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t47; _push++;
  float _t48 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t48; _push++;
  float _t49 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t49; _push++;
  float _t50 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t50; _push++;
  float _t51 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t51; _push++;
  float _t52 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t52; _push++;
  float _t53 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t53; _push++;
  float _t54 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t54; _push++;
  float _t55 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t55; _push++;
  float _t56 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t56; _push++;
  float _t57 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t57; _push++;
  float _t58 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t58; _push++;
  float _t59 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t59; _push++;
  float _t60 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t60; _push++;
  float _t61 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t61; _push++;
  float _t62 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t62; _push++;
  float _t63 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t63; _push++;
  float _t64 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 64 + (tid % 128))] = _t64; _push++;
  (void)_pop; (void)_push;
}

static void work_TB0(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  (void)_pop; (void)_push;
}

static void work_TB1(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  (void)_pop; (void)_push;
}

static void work_TB2(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  (void)_pop; (void)_push;
}

static void work_TB3(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  (void)_pop; (void)_push;
}

static void work_TB4(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  (void)_pop; (void)_push;
}

static void work_TB5(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  (void)_pop; (void)_push;
}

static void work_TB6(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  (void)_pop; (void)_push;
}

static void work_TB7(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 1 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = _t1; _push++;
  (void)_pop; (void)_push;
}

static void work_RepeatB(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float g[64] = {0};
  for (int j = 0; j < 64; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 64 + (tid % 128))]; _pop++;
    g[j] = _t1;
  }
  for (int t = 0; t < 8; t++) {
    for (int j = 0; j < 64; j++) {
      out[(128 * (_push) + (tid / 128) * 128 * 512 + (tid % 128))] = g[j]; _push++;
    }
  }
  (void)_pop; (void)_push;
}

static void work_DotProduct(const device float* in, device float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float a[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    a[j] = _t1;
  }
  float acc = 0.0f;
  for (int j = 0; j < 8; j++) {
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    acc = (acc + (a[j] * _t2));
  }
  out[(128 * (_push) + (tid / 128) * 128 * 1 + (tid % 128))] = acc; _push++;
  (void)_pop; (void)_push;
}

kernel void swp_kernel(device float* buf_0_0__2_0 [[buffer(0)]],
                       device float* buf_2_0__1_0 [[buffer(1)]],
                       device float* buf_3_0__5_0 [[buffer(2)]],
                       device float* buf_5_0__4_0 [[buffer(3)]],
                       device float* buf_3_1__6_0 [[buffer(4)]],
                       device float* buf_6_0__4_1 [[buffer(5)]],
                       device float* buf_3_2__7_0 [[buffer(6)]],
                       device float* buf_7_0__4_2 [[buffer(7)]],
                       device float* buf_3_3__8_0 [[buffer(8)]],
                       device float* buf_8_0__4_3 [[buffer(9)]],
                       device float* buf_3_4__9_0 [[buffer(10)]],
                       device float* buf_9_0__4_4 [[buffer(11)]],
                       device float* buf_3_5__10_0 [[buffer(12)]],
                       device float* buf_10_0__4_5 [[buffer(13)]],
                       device float* buf_3_6__11_0 [[buffer(14)]],
                       device float* buf_11_0__4_6 [[buffer(15)]],
                       device float* buf_3_7__12_0 [[buffer(16)]],
                       device float* buf_12_0__4_7 [[buffer(17)]],
                       device float* buf_4_0__13_0 [[buffer(18)]],
                       device float* buf_0_1__3_0 [[buffer(19)]],
                       device float* buf_13_0__1_1 [[buffer(20)]],
                       device float* buf_1_0__14_0 [[buffer(21)]],
                       const device float* stream_in [[buffer(22)]],
                       device float* stream_out [[buffer(23)]],
                       constant int& iterations [[buffer(24)]],
                       uint tid_u [[thread_position_in_threadgroup]],
                       uint sm_u [[threadgroup_position_in_grid]])
{
  int tid = (int)tid_u;
  int sm = (int)sm_u;
  /* staging predicates, one per pipeline stage (depth 6) */
  threadgroup int stage_on[6];
  if (tid == 0) for (int s = 0; s < 6; s++) stage_on[s] = 0;
  threadgroup_barrier(mem_flags::mem_threadgroup);
  for (int it = 0; it < iterations + 6; it++) {
    if (tid == 0) { for (int s = 5; s > 0; s--) stage_on[s] = stage_on[s-1]; stage_on[0] = (it < iterations); }
    threadgroup_barrier(mem_flags::mem_threadgroup);
    switch (sm) {
    case 0: {
      /* (RepeatRowsA, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_RepeatRowsA(buf_0_0__2_0 + region_2(it - 1), buf_2_0__1_0 + region_2(it - 1), tid);
      break; }
    case 1: {
      /* (join_transpose_B, k=0) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_join_transpose_B(buf_5_0__4_0 + region_4(it - 3), buf_4_0__13_0 + region_4(it - 3), tid);
      /* (split_opsplit, k=0) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_opsplit(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (DotProduct, k=2) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=1) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=0) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (RepeatB, k=0) o=16946 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_RepeatB(buf_4_0__13_0 + region_13(it - 3), buf_13_0__1_1 + region_13(it - 3), tid);
      /* (split_transpose_B, k=0) o=33330 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_transpose_B(buf_0_1__3_0 + region_3(it - 0), buf_3_0__5_0 + region_3(it - 0), tid);
      /* (TB0, k=0) o=35940 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_TB0(buf_3_0__5_0 + region_5(it - 0), buf_5_0__4_0 + region_5(it - 0), tid);
      break; }
    case 2: {
      /* (split_transpose_B, k=1) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_split_transpose_B(buf_0_1__3_0 + region_3(it - 1), buf_3_0__5_0 + region_3(it - 1), tid);
      /* (TB0, k=1) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB0(buf_3_0__5_0 + region_5(it - 1), buf_5_0__4_0 + region_5(it - 1), tid);
      /* (DotProduct, k=36) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=35) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=34) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=33) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=32) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=31) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=30) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=29) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=28) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=27) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=26) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=25) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=24) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=23) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=22) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=21) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=20) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=19) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=18) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=17) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=16) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=15) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=14) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=13) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=12) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=11) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=10) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=9) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=8) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=7) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=6) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=5) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=4) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=3) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      break; }
    case 3: {
      /* (TB0, k=4) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_TB0(buf_3_0__5_0 + region_5(it - 2), buf_5_0__4_0 + region_5(it - 2), tid);
      /* (TB0, k=3) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_TB0(buf_3_0__5_0 + region_5(it - 2), buf_5_0__4_0 + region_5(it - 2), tid);
      /* (TB0, k=2) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_TB0(buf_3_0__5_0 + region_5(it - 2), buf_5_0__4_0 + region_5(it - 2), tid);
      /* (DotProduct, k=63) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=62) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=61) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=60) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=59) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=58) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=57) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=56) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=55) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=54) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=53) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=52) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=51) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=50) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=49) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=48) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=47) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=46) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=45) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=44) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=43) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=42) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=41) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=40) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=39) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=38) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (DotProduct, k=37) o=16946 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_DotProduct(buf_1_0__14_0 + region_14(it - 5), stream_out + region_14(it - 5), tid);
      /* (join_opsplit, k=9) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=8) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=7) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=6) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=5) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=4) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=3) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=2) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=1) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=0) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      break; }
    case 4: {
      /* (TB0, k=5) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_TB0(buf_3_0__5_0 + region_5(it - 2), buf_5_0__4_0 + region_5(it - 2), tid);
      /* (join_opsplit, k=57) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=56) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=55) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=54) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=53) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=52) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=51) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=50) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=49) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=48) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=47) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=46) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=45) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=44) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=43) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=42) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=41) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=40) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=39) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=38) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=37) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=36) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=35) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=34) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=33) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=32) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=31) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=30) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=29) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=28) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=27) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=26) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=25) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=24) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=23) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=22) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=21) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=20) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=19) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=18) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=17) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=16) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=15) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=14) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=13) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=12) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=11) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=10) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      break; }
    case 5: {
      /* (TB7, k=1) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_TB7(buf_3_7__12_0 + region_12(it - 2), buf_12_0__4_7 + region_12(it - 2), tid);
      /* (TB6, k=1) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_TB6(buf_3_6__11_0 + region_11(it - 2), buf_11_0__4_6 + region_11(it - 2), tid);
      /* (TB5, k=1) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_TB5(buf_3_5__10_0 + region_10(it - 2), buf_10_0__4_5 + region_10(it - 2), tid);
      /* (TB4, k=1) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_TB4(buf_3_4__9_0 + region_9(it - 2), buf_9_0__4_4 + region_9(it - 2), tid);
      /* (TB3, k=1) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_TB3(buf_3_3__8_0 + region_8(it - 2), buf_8_0__4_3 + region_8(it - 2), tid);
      /* (TB2, k=1) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_TB2(buf_3_2__7_0 + region_7(it - 2), buf_7_0__4_2 + region_7(it - 2), tid);
      /* (TB1, k=1) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_TB1(buf_3_1__6_0 + region_6(it - 2), buf_6_0__4_1 + region_6(it - 2), tid);
      /* (split_transpose_B, k=7) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_split_transpose_B(buf_0_1__3_0 + region_3(it - 1), buf_3_0__5_0 + region_3(it - 1), tid);
      /* (split_transpose_B, k=6) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_split_transpose_B(buf_0_1__3_0 + region_3(it - 1), buf_3_0__5_0 + region_3(it - 1), tid);
      /* (split_transpose_B, k=5) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_split_transpose_B(buf_0_1__3_0 + region_3(it - 1), buf_3_0__5_0 + region_3(it - 1), tid);
      /* (split_transpose_B, k=4) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_split_transpose_B(buf_0_1__3_0 + region_3(it - 1), buf_3_0__5_0 + region_3(it - 1), tid);
      /* (split_transpose_B, k=3) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_split_transpose_B(buf_0_1__3_0 + region_3(it - 1), buf_3_0__5_0 + region_3(it - 1), tid);
      /* (split_transpose_B, k=2) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_split_transpose_B(buf_0_1__3_0 + region_3(it - 1), buf_3_0__5_0 + region_3(it - 1), tid);
      /* (TB7, k=7) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB7(buf_3_7__12_0 + region_12(it - 1), buf_12_0__4_7 + region_12(it - 1), tid);
      /* (TB7, k=6) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB7(buf_3_7__12_0 + region_12(it - 1), buf_12_0__4_7 + region_12(it - 1), tid);
      /* (TB7, k=5) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB7(buf_3_7__12_0 + region_12(it - 1), buf_12_0__4_7 + region_12(it - 1), tid);
      /* (TB7, k=4) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB7(buf_3_7__12_0 + region_12(it - 1), buf_12_0__4_7 + region_12(it - 1), tid);
      /* (TB7, k=3) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB7(buf_3_7__12_0 + region_12(it - 1), buf_12_0__4_7 + region_12(it - 1), tid);
      /* (TB7, k=2) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB7(buf_3_7__12_0 + region_12(it - 1), buf_12_0__4_7 + region_12(it - 1), tid);
      /* (TB6, k=7) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB6(buf_3_6__11_0 + region_11(it - 1), buf_11_0__4_6 + region_11(it - 1), tid);
      /* (TB6, k=6) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB6(buf_3_6__11_0 + region_11(it - 1), buf_11_0__4_6 + region_11(it - 1), tid);
      /* (TB6, k=5) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB6(buf_3_6__11_0 + region_11(it - 1), buf_11_0__4_6 + region_11(it - 1), tid);
      /* (TB6, k=4) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB6(buf_3_6__11_0 + region_11(it - 1), buf_11_0__4_6 + region_11(it - 1), tid);
      /* (TB6, k=3) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB6(buf_3_6__11_0 + region_11(it - 1), buf_11_0__4_6 + region_11(it - 1), tid);
      /* (TB6, k=2) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB6(buf_3_6__11_0 + region_11(it - 1), buf_11_0__4_6 + region_11(it - 1), tid);
      /* (TB5, k=7) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB5(buf_3_5__10_0 + region_10(it - 1), buf_10_0__4_5 + region_10(it - 1), tid);
      /* (TB5, k=6) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB5(buf_3_5__10_0 + region_10(it - 1), buf_10_0__4_5 + region_10(it - 1), tid);
      /* (TB5, k=5) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB5(buf_3_5__10_0 + region_10(it - 1), buf_10_0__4_5 + region_10(it - 1), tid);
      /* (TB5, k=4) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB5(buf_3_5__10_0 + region_10(it - 1), buf_10_0__4_5 + region_10(it - 1), tid);
      /* (TB5, k=3) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB5(buf_3_5__10_0 + region_10(it - 1), buf_10_0__4_5 + region_10(it - 1), tid);
      /* (TB5, k=2) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB5(buf_3_5__10_0 + region_10(it - 1), buf_10_0__4_5 + region_10(it - 1), tid);
      /* (TB4, k=7) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB4(buf_3_4__9_0 + region_9(it - 1), buf_9_0__4_4 + region_9(it - 1), tid);
      /* (TB4, k=6) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB4(buf_3_4__9_0 + region_9(it - 1), buf_9_0__4_4 + region_9(it - 1), tid);
      /* (TB4, k=5) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB4(buf_3_4__9_0 + region_9(it - 1), buf_9_0__4_4 + region_9(it - 1), tid);
      /* (TB4, k=4) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB4(buf_3_4__9_0 + region_9(it - 1), buf_9_0__4_4 + region_9(it - 1), tid);
      /* (TB4, k=3) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB4(buf_3_4__9_0 + region_9(it - 1), buf_9_0__4_4 + region_9(it - 1), tid);
      /* (TB4, k=2) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB4(buf_3_4__9_0 + region_9(it - 1), buf_9_0__4_4 + region_9(it - 1), tid);
      /* (TB3, k=7) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB3(buf_3_3__8_0 + region_8(it - 1), buf_8_0__4_3 + region_8(it - 1), tid);
      /* (TB3, k=6) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB3(buf_3_3__8_0 + region_8(it - 1), buf_8_0__4_3 + region_8(it - 1), tid);
      /* (TB3, k=5) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB3(buf_3_3__8_0 + region_8(it - 1), buf_8_0__4_3 + region_8(it - 1), tid);
      /* (TB3, k=4) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB3(buf_3_3__8_0 + region_8(it - 1), buf_8_0__4_3 + region_8(it - 1), tid);
      /* (TB3, k=3) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB3(buf_3_3__8_0 + region_8(it - 1), buf_8_0__4_3 + region_8(it - 1), tid);
      /* (TB3, k=2) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB3(buf_3_3__8_0 + region_8(it - 1), buf_8_0__4_3 + region_8(it - 1), tid);
      /* (TB2, k=7) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB2(buf_3_2__7_0 + region_7(it - 1), buf_7_0__4_2 + region_7(it - 1), tid);
      /* (TB2, k=6) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB2(buf_3_2__7_0 + region_7(it - 1), buf_7_0__4_2 + region_7(it - 1), tid);
      /* (TB2, k=5) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB2(buf_3_2__7_0 + region_7(it - 1), buf_7_0__4_2 + region_7(it - 1), tid);
      /* (TB2, k=4) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB2(buf_3_2__7_0 + region_7(it - 1), buf_7_0__4_2 + region_7(it - 1), tid);
      /* (TB2, k=3) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB2(buf_3_2__7_0 + region_7(it - 1), buf_7_0__4_2 + region_7(it - 1), tid);
      /* (TB2, k=2) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB2(buf_3_2__7_0 + region_7(it - 1), buf_7_0__4_2 + region_7(it - 1), tid);
      /* (TB1, k=7) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB1(buf_3_1__6_0 + region_6(it - 1), buf_6_0__4_1 + region_6(it - 1), tid);
      /* (TB1, k=6) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB1(buf_3_1__6_0 + region_6(it - 1), buf_6_0__4_1 + region_6(it - 1), tid);
      /* (TB1, k=5) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB1(buf_3_1__6_0 + region_6(it - 1), buf_6_0__4_1 + region_6(it - 1), tid);
      /* (TB1, k=4) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB1(buf_3_1__6_0 + region_6(it - 1), buf_6_0__4_1 + region_6(it - 1), tid);
      /* (TB1, k=3) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB1(buf_3_1__6_0 + region_6(it - 1), buf_6_0__4_1 + region_6(it - 1), tid);
      /* (TB1, k=2) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB1(buf_3_1__6_0 + region_6(it - 1), buf_6_0__4_1 + region_6(it - 1), tid);
      /* (TB0, k=7) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB0(buf_3_0__5_0 + region_5(it - 1), buf_5_0__4_0 + region_5(it - 1), tid);
      /* (TB0, k=6) o=2610 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB0(buf_3_0__5_0 + region_5(it - 1), buf_5_0__4_0 + region_5(it - 1), tid);
      /* (join_opsplit, k=63) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=62) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=61) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=60) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=59) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (join_opsplit, k=58) o=16946 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_join_opsplit(buf_2_0__1_0 + region_1(it - 4), buf_1_0__14_0 + region_1(it - 4), tid);
      /* (TB7, k=0) o=33330 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB7(buf_3_7__12_0 + region_12(it - 1), buf_12_0__4_7 + region_12(it - 1), tid);
      /* (TB6, k=0) o=33330 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB6(buf_3_6__11_0 + region_11(it - 1), buf_11_0__4_6 + region_11(it - 1), tid);
      /* (TB5, k=0) o=33330 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB5(buf_3_5__10_0 + region_10(it - 1), buf_10_0__4_5 + region_10(it - 1), tid);
      /* (TB4, k=0) o=33330 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB4(buf_3_4__9_0 + region_9(it - 1), buf_9_0__4_4 + region_9(it - 1), tid);
      /* (TB3, k=0) o=33330 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB3(buf_3_3__8_0 + region_8(it - 1), buf_8_0__4_3 + region_8(it - 1), tid);
      /* (TB2, k=0) o=33330 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB2(buf_3_2__7_0 + region_7(it - 1), buf_7_0__4_2 + region_7(it - 1), tid);
      /* (TB1, k=0) o=33330 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_TB1(buf_3_1__6_0 + region_6(it - 1), buf_6_0__4_1 + region_6(it - 1), tid);
      break; }
    }
    /* II boundary */
  }
}

/* host launch (Metal):
 *   dispatchThreadgroups: 16 threadgroups x 512 threads
 *   newBuffer buf_0_0__2_0: 917504 bytes
 *   newBuffer buf_2_0__1_0: 7340032 bytes
 *   newBuffer buf_3_0__5_0: 114688 bytes
 *   newBuffer buf_5_0__4_0: 114688 bytes
 *   newBuffer buf_3_1__6_0: 114688 bytes
 *   newBuffer buf_6_0__4_1: 114688 bytes
 *   newBuffer buf_3_2__7_0: 114688 bytes
 *   newBuffer buf_7_0__4_2: 114688 bytes
 *   newBuffer buf_3_3__8_0: 114688 bytes
 *   newBuffer buf_8_0__4_3: 114688 bytes
 *   newBuffer buf_3_4__9_0: 114688 bytes
 *   newBuffer buf_9_0__4_4: 114688 bytes
 *   newBuffer buf_3_5__10_0: 114688 bytes
 *   newBuffer buf_10_0__4_5: 114688 bytes
 *   newBuffer buf_3_6__11_0: 114688 bytes
 *   newBuffer buf_11_0__4_6: 114688 bytes
 *   newBuffer buf_3_7__12_0: 114688 bytes
 *   newBuffer buf_12_0__4_7: 114688 bytes
 *   newBuffer buf_4_0__13_0: 917504 bytes
 *   newBuffer buf_0_1__3_0: 917504 bytes
 *   newBuffer buf_13_0__1_1: 7340032 bytes
 *   newBuffer buf_1_0__14_0: 14680064 bytes
 *   stream_in/stream_out: 1 << 20 bytes, input shuffled per eq. (9); iterations = 1024
 */
