/* streamit_gpu artifact
 * quality: heuristic (completed)
 * II: 162404 (lower bound 162404, binding res_mii_sharp)
 * schedule signature: 13d636dd52d112c95644671e7fb1f054
 */
#include <cuda_runtime.h>
#include <cstdio>

static __device__ inline int region_0(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_1(int it) { return ((it % 7) + 7) % 7 * 65536; }
static __device__ inline int region_2(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_3(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_4(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_5(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_6(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_7(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_8(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_9(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_10(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_11(int it) { return ((it % 7) + 7) % 7 * 0; }
static __device__ inline int region_12(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_13(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_14(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_15(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_16(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_17(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_18(int it) { return ((it % 7) + 7) % 7 * 8192; }
static __device__ inline int region_19(int it) { return ((it % 7) + 7) % 7 * 8192; }

static __device__ void work_split_fft_rank1(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t8; _push++;
  float _t9 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t9; _push++;
  float _t10 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t10; _push++;
  float _t11 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t11; _push++;
  float _t12 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t12; _push++;
  float _t13 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t13; _push++;
  float _t14 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t14; _push++;
  float _t15 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t15; _push++;
  float _t16 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t16; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_fft_rank1(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t8; _push++;
  float _t9 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t9; _push++;
  float _t10 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t10; _push++;
  float _t11 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t11; _push++;
  float _t12 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t12; _push++;
  float _t13 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t13; _push++;
  float _t14 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t14; _push++;
  float _t15 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t15; _push++;
  float _t16 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t16; _push++;
  float _t17 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t17; _push++;
  float _t18 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t18; _push++;
  float _t19 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t19; _push++;
  float _t20 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t20; _push++;
  float _t21 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t21; _push++;
  float _t22 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t22; _push++;
  float _t23 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t23; _push++;
  float _t24 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t24; _push++;
  float _t25 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t25; _push++;
  float _t26 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t26; _push++;
  float _t27 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t27; _push++;
  float _t28 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t28; _push++;
  float _t29 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t29; _push++;
  float _t30 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t30; _push++;
  float _t31 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t31; _push++;
  float _t32 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t32; _push++;
  float _t33 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t33; _push++;
  float _t34 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t34; _push++;
  float _t35 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t35; _push++;
  float _t36 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t36; _push++;
  float _t37 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t37; _push++;
  float _t38 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t38; _push++;
  float _t39 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t39; _push++;
  float _t40 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t40; _push++;
  float _t41 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t41; _push++;
  float _t42 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t42; _push++;
  float _t43 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t43; _push++;
  float _t44 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t44; _push++;
  float _t45 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t45; _push++;
  float _t46 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t46; _push++;
  float _t47 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t47; _push++;
  float _t48 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t48; _push++;
  float _t49 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t49; _push++;
  float _t50 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t50; _push++;
  float _t51 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t51; _push++;
  float _t52 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t52; _push++;
  float _t53 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t53; _push++;
  float _t54 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t54; _push++;
  float _t55 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t55; _push++;
  float _t56 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t56; _push++;
  float _t57 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t57; _push++;
  float _t58 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t58; _push++;
  float _t59 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t59; _push++;
  float _t60 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t60; _push++;
  float _t61 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t61; _push++;
  float _t62 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t62; _push++;
  float _t63 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t63; _push++;
  float _t64 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t64; _push++;
  float _t65 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t65; _push++;
  float _t66 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t66; _push++;
  float _t67 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t67; _push++;
  float _t68 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t68; _push++;
  float _t69 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t69; _push++;
  float _t70 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t70; _push++;
  float _t71 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t71; _push++;
  float _t72 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t72; _push++;
  float _t73 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t73; _push++;
  float _t74 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t74; _push++;
  float _t75 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t75; _push++;
  float _t76 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t76; _push++;
  float _t77 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t77; _push++;
  float _t78 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t78; _push++;
  float _t79 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t79; _push++;
  float _t80 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t80; _push++;
  float _t81 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t81; _push++;
  float _t82 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t82; _push++;
  float _t83 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t83; _push++;
  float _t84 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t84; _push++;
  float _t85 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t85; _push++;
  float _t86 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t86; _push++;
  float _t87 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t87; _push++;
  float _t88 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t88; _push++;
  float _t89 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t89; _push++;
  float _t90 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t90; _push++;
  float _t91 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t91; _push++;
  float _t92 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t92; _push++;
  float _t93 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t93; _push++;
  float _t94 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t94; _push++;
  float _t95 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t95; _push++;
  float _t96 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t96; _push++;
  float _t97 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t97; _push++;
  float _t98 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t98; _push++;
  float _t99 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t99; _push++;
  float _t100 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t100; _push++;
  float _t101 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t101; _push++;
  float _t102 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t102; _push++;
  float _t103 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t103; _push++;
  float _t104 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t104; _push++;
  float _t105 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t105; _push++;
  float _t106 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t106; _push++;
  float _t107 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t107; _push++;
  float _t108 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t108; _push++;
  float _t109 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t109; _push++;
  float _t110 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t110; _push++;
  float _t111 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t111; _push++;
  float _t112 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t112; _push++;
  float _t113 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t113; _push++;
  float _t114 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t114; _push++;
  float _t115 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t115; _push++;
  float _t116 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t116; _push++;
  float _t117 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t117; _push++;
  float _t118 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t118; _push++;
  float _t119 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t119; _push++;
  float _t120 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t120; _push++;
  float _t121 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t121; _push++;
  float _t122 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t122; _push++;
  float _t123 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t123; _push++;
  float _t124 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t124; _push++;
  float _t125 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t125; _push++;
  float _t126 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t126; _push++;
  float _t127 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t127; _push++;
  float _t128 = in[(128 * (_pop) + (tid / 128) * 128 * 128 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 128 + (tid % 128))] = _t128; _push++;
  (void)_pop; (void)_push;
}

__constant__ float DFT8Tw_j0_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8Tw_j0_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
__constant__ float DFT8Tw_j0_twc[8] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f };
__constant__ float DFT8Tw_j0_tws[8] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f };
static __device__ void work_DFT8Tw_j0(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8Tw_j0_cosT[((k * 8) + j)];
      float s = DFT8Tw_j0_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    float pr = ((sr * DFT8Tw_j0_twc[k]) - (si * DFT8Tw_j0_tws[k]));
    float pi = ((sr * DFT8Tw_j0_tws[k]) + (si * DFT8Tw_j0_twc[k]));
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pi; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8Tw_j1_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8Tw_j1_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
__constant__ float DFT8Tw_j1_twc[8] = { 1.0f, 0.995184727f, 0.98078528f, 0.956940336f, 0.923879533f, 0.881921264f, 0.831469612f, 0.773010453f };
__constant__ float DFT8Tw_j1_tws[8] = { -0.0f, -0.0980171403f, -0.195090322f, -0.290284677f, -0.382683432f, -0.471396737f, -0.555570233f, -0.634393284f };
static __device__ void work_DFT8Tw_j1(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8Tw_j1_cosT[((k * 8) + j)];
      float s = DFT8Tw_j1_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    float pr = ((sr * DFT8Tw_j1_twc[k]) - (si * DFT8Tw_j1_tws[k]));
    float pi = ((sr * DFT8Tw_j1_tws[k]) + (si * DFT8Tw_j1_twc[k]));
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pi; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8Tw_j2_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8Tw_j2_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
__constant__ float DFT8Tw_j2_twc[8] = { 1.0f, 0.98078528f, 0.923879533f, 0.831469612f, 0.707106781f, 0.555570233f, 0.382683432f, 0.195090322f };
__constant__ float DFT8Tw_j2_tws[8] = { -0.0f, -0.195090322f, -0.382683432f, -0.555570233f, -0.707106781f, -0.831469612f, -0.923879533f, -0.98078528f };
static __device__ void work_DFT8Tw_j2(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8Tw_j2_cosT[((k * 8) + j)];
      float s = DFT8Tw_j2_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    float pr = ((sr * DFT8Tw_j2_twc[k]) - (si * DFT8Tw_j2_tws[k]));
    float pi = ((sr * DFT8Tw_j2_tws[k]) + (si * DFT8Tw_j2_twc[k]));
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pi; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8Tw_j3_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8Tw_j3_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
__constant__ float DFT8Tw_j3_twc[8] = { 1.0f, 0.956940336f, 0.831469612f, 0.634393284f, 0.382683432f, 0.0980171403f, -0.195090322f, -0.471396737f };
__constant__ float DFT8Tw_j3_tws[8] = { -0.0f, -0.290284677f, -0.555570233f, -0.773010453f, -0.923879533f, -0.995184727f, -0.98078528f, -0.881921264f };
static __device__ void work_DFT8Tw_j3(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8Tw_j3_cosT[((k * 8) + j)];
      float s = DFT8Tw_j3_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    float pr = ((sr * DFT8Tw_j3_twc[k]) - (si * DFT8Tw_j3_tws[k]));
    float pi = ((sr * DFT8Tw_j3_tws[k]) + (si * DFT8Tw_j3_twc[k]));
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pi; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8Tw_j4_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8Tw_j4_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
__constant__ float DFT8Tw_j4_twc[8] = { 1.0f, 0.923879533f, 0.707106781f, 0.382683432f, 6.123234e-17f, -0.382683432f, -0.707106781f, -0.923879533f };
__constant__ float DFT8Tw_j4_tws[8] = { -0.0f, -0.382683432f, -0.707106781f, -0.923879533f, -1.0f, -0.923879533f, -0.707106781f, -0.382683432f };
static __device__ void work_DFT8Tw_j4(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8Tw_j4_cosT[((k * 8) + j)];
      float s = DFT8Tw_j4_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    float pr = ((sr * DFT8Tw_j4_twc[k]) - (si * DFT8Tw_j4_tws[k]));
    float pi = ((sr * DFT8Tw_j4_tws[k]) + (si * DFT8Tw_j4_twc[k]));
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pi; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8Tw_j5_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8Tw_j5_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
__constant__ float DFT8Tw_j5_twc[8] = { 1.0f, 0.881921264f, 0.555570233f, 0.0980171403f, -0.382683432f, -0.773010453f, -0.98078528f, -0.956940336f };
__constant__ float DFT8Tw_j5_tws[8] = { -0.0f, -0.471396737f, -0.831469612f, -0.995184727f, -0.923879533f, -0.634393284f, -0.195090322f, 0.290284677f };
static __device__ void work_DFT8Tw_j5(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8Tw_j5_cosT[((k * 8) + j)];
      float s = DFT8Tw_j5_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    float pr = ((sr * DFT8Tw_j5_twc[k]) - (si * DFT8Tw_j5_tws[k]));
    float pi = ((sr * DFT8Tw_j5_tws[k]) + (si * DFT8Tw_j5_twc[k]));
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pi; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8Tw_j6_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8Tw_j6_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
__constant__ float DFT8Tw_j6_twc[8] = { 1.0f, 0.831469612f, 0.382683432f, -0.195090322f, -0.707106781f, -0.98078528f, -0.923879533f, -0.555570233f };
__constant__ float DFT8Tw_j6_tws[8] = { -0.0f, -0.555570233f, -0.923879533f, -0.98078528f, -0.707106781f, -0.195090322f, 0.382683432f, 0.831469612f };
static __device__ void work_DFT8Tw_j6(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8Tw_j6_cosT[((k * 8) + j)];
      float s = DFT8Tw_j6_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    float pr = ((sr * DFT8Tw_j6_twc[k]) - (si * DFT8Tw_j6_tws[k]));
    float pi = ((sr * DFT8Tw_j6_tws[k]) + (si * DFT8Tw_j6_twc[k]));
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pi; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8Tw_j7_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8Tw_j7_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
__constant__ float DFT8Tw_j7_twc[8] = { 1.0f, 0.773010453f, 0.195090322f, -0.471396737f, -0.923879533f, -0.956940336f, -0.555570233f, 0.0980171403f };
__constant__ float DFT8Tw_j7_tws[8] = { -0.0f, -0.634393284f, -0.98078528f, -0.881921264f, -0.382683432f, 0.290284677f, 0.831469612f, 0.995184727f };
static __device__ void work_DFT8Tw_j7(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8Tw_j7_cosT[((k * 8) + j)];
      float s = DFT8Tw_j7_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    float pr = ((sr * DFT8Tw_j7_twc[k]) - (si * DFT8Tw_j7_tws[k]));
    float pi = ((sr * DFT8Tw_j7_tws[k]) + (si * DFT8Tw_j7_twc[k]));
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = pi; _push++;
  }
  (void)_pop; (void)_push;
}

static __device__ void work_split_fft_rank2(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t8; _push++;
  float _t9 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t9; _push++;
  float _t10 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t10; _push++;
  float _t11 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t11; _push++;
  float _t12 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t12; _push++;
  float _t13 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t13; _push++;
  float _t14 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t14; _push++;
  float _t15 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t15; _push++;
  float _t16 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t16; _push++;
  (void)_pop; (void)_push;
}

static __device__ void work_join_fft_rank2(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t1; _push++;
  float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t2; _push++;
  float _t3 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t3; _push++;
  float _t4 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t4; _push++;
  float _t5 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t5; _push++;
  float _t6 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t6; _push++;
  float _t7 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t7; _push++;
  float _t8 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t8; _push++;
  float _t9 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t9; _push++;
  float _t10 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t10; _push++;
  float _t11 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t11; _push++;
  float _t12 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t12; _push++;
  float _t13 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t13; _push++;
  float _t14 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t14; _push++;
  float _t15 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t15; _push++;
  float _t16 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
  out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = _t16; _push++;
  (void)_pop; (void)_push;
}

__constant__ float DFT8_k0_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8_k0_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
static __device__ void work_DFT8_k0(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8_k0_cosT[((k * 8) + j)];
      float s = DFT8_k0_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = sr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = si; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8_k1_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8_k1_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
static __device__ void work_DFT8_k1(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8_k1_cosT[((k * 8) + j)];
      float s = DFT8_k1_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = sr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = si; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8_k2_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8_k2_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
static __device__ void work_DFT8_k2(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8_k2_cosT[((k * 8) + j)];
      float s = DFT8_k2_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = sr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = si; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8_k3_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8_k3_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
static __device__ void work_DFT8_k3(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8_k3_cosT[((k * 8) + j)];
      float s = DFT8_k3_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = sr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = si; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8_k4_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8_k4_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
static __device__ void work_DFT8_k4(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8_k4_cosT[((k * 8) + j)];
      float s = DFT8_k4_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = sr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = si; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8_k5_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8_k5_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
static __device__ void work_DFT8_k5(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8_k5_cosT[((k * 8) + j)];
      float s = DFT8_k5_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = sr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = si; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8_k6_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8_k6_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
static __device__ void work_DFT8_k6(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8_k6_cosT[((k * 8) + j)];
      float s = DFT8_k6_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = sr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = si; _push++;
  }
  (void)_pop; (void)_push;
}

__constant__ float DFT8_k7_cosT[64] = { 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 0.707106781f, 6.123234e-17f, -0.707106781f, -1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, 1.0f, 6.123234e-17f, -1.0f, -1.8369702e-16f, 1.0f, 3.061617e-16f, -1.0f, -4.2862638e-16f, 1.0f, -0.707106781f, -1.8369702e-16f, 0.707106781f, -1.0f, 0.707106781f, 5.5109106e-16f, -0.707106781f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -0.707106781f, 3.061617e-16f, 0.707106781f, -1.0f, 0.707106781f, -2.69484194e-15f, -0.707106781f, 1.0f, -1.8369702e-16f, -1.0f, 5.5109106e-16f, 1.0f, -2.69484194e-15f, -1.0f, -4.904777e-16f, 1.0f, 0.707106781f, -4.2862638e-16f, -0.707106781f, -1.0f, -0.707106781f, -4.904777e-16f, 0.707106781f };
__constant__ float DFT8_k7_sinT[64] = { -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.0f, -0.707106781f, -1.0f, -0.707106781f, -1.2246468e-16f, 0.707106781f, 1.0f, 0.707106781f, -0.0f, -1.0f, -1.2246468e-16f, 1.0f, 2.4492936e-16f, -1.0f, -3.6739404e-16f, 1.0f, -0.0f, -0.707106781f, 1.0f, -0.707106781f, -3.6739404e-16f, 0.707106781f, -1.0f, 0.707106781f, -0.0f, -1.2246468e-16f, 2.4492936e-16f, -3.6739404e-16f, 4.8985872e-16f, -6.123234e-16f, 7.34788079e-16f, -8.57252759e-16f, -0.0f, 0.707106781f, -1.0f, 0.707106781f, -6.123234e-16f, -0.707106781f, 1.0f, -0.707106781f, -0.0f, 1.0f, -3.6739404e-16f, -1.0f, 7.34788079e-16f, 1.0f, -1.10218212e-15f, -1.0f, -0.0f, 0.707106781f, 1.0f, 0.707106781f, -8.57252759e-16f, -0.707106781f, -1.0f, -0.707106781f };
static __device__ void work_DFT8_k7(const float* in, float* out, int tid)
{
  int _pop = 0;
  int _push = 0;
  float re[8] = {0};
  float im[8] = {0};
  for (int j = 0; j < 8; j++) {
    float _t1 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    re[j] = _t1;
    float _t2 = in[(128 * (_pop) + (tid / 128) * 128 * 16 + (tid % 128))]; _pop++;
    im[j] = _t2;
  }
  for (int k = 0; k < 8; k++) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int j = 0; j < 8; j++) {
      float c = DFT8_k7_cosT[((k * 8) + j)];
      float s = DFT8_k7_sinT[((k * 8) + j)];
      sr = ((sr + (re[j] * c)) - (im[j] * s));
      si = ((si + (re[j] * s)) + (im[j] * c));
    }
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = sr; _push++;
    out[(128 * (_push) + (tid / 128) * 128 * 16 + (tid % 128))] = si; _push++;
  }
  (void)_pop; (void)_push;
}

__global__ void swp_kernel(float* buf_0_0__2_0, float* buf_2_0__1_0, float* buf_0_1__3_0, float* buf_3_0__1_1, float* buf_0_2__4_0, float* buf_4_0__1_2, float* buf_0_3__5_0, float* buf_5_0__1_3, float* buf_0_4__6_0, float* buf_6_0__1_4, float* buf_0_5__7_0, float* buf_7_0__1_5, float* buf_0_6__8_0, float* buf_8_0__1_6, float* buf_0_7__9_0, float* buf_9_0__1_7, float* buf_10_0__12_0, float* buf_12_0__11_0, float* buf_10_1__13_0, float* buf_13_0__11_1, float* buf_10_2__14_0, float* buf_14_0__11_2, float* buf_10_3__15_0, float* buf_15_0__11_3, float* buf_10_4__16_0, float* buf_16_0__11_4, float* buf_10_5__17_0, float* buf_17_0__11_5, float* buf_10_6__18_0, float* buf_18_0__11_6, float* buf_10_7__19_0, float* buf_19_0__11_7, float* buf_1_0__10_0, const float* stream_in, float* stream_out, int iterations)
{
  int tid = threadIdx.x;
  int sm = blockIdx.x;
  /* staging predicates, one per pipeline stage (depth 6) */
  __shared__ int stage_on[6];
  if (tid == 0) for (int s = 0; s < 6; s++) stage_on[s] = 0;
  __syncthreads();
  for (int it = 0; it < iterations + 6; it++) {
    if (tid == 0) { for (int s = 5; s > 0; s--) stage_on[s] = stage_on[s-1]; stage_on[0] = (it < iterations); }
    __syncthreads();
    switch (sm) {
    case 0: {
      /* (DFT8Tw_j0, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DFT8Tw_j0(buf_0_0__2_0 + region_2(it - 1), buf_2_0__1_0 + region_2(it - 1), tid);
      /* (split_fft_rank1, k=4) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_fft_rank1(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (split_fft_rank1, k=3) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_fft_rank1(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (split_fft_rank1, k=2) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_fft_rank1(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (split_fft_rank1, k=1) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_fft_rank1(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (split_fft_rank1, k=0) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_fft_rank1(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      break; }
    case 1: {
      /* (split_fft_rank2, k=1) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_split_fft_rank2(buf_1_0__10_0 + region_10(it - 3), buf_10_0__12_0 + region_10(it - 3), tid);
      /* (split_fft_rank2, k=0) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_split_fft_rank2(buf_1_0__10_0 + region_10(it - 3), buf_10_0__12_0 + region_10(it - 3), tid);
      /* (DFT8Tw_j1, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DFT8Tw_j1(buf_0_1__3_0 + region_3(it - 1), buf_3_0__1_1 + region_3(it - 1), tid);
      /* (split_fft_rank1, k=7) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_fft_rank1(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (split_fft_rank1, k=6) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_fft_rank1(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      /* (split_fft_rank1, k=5) o=0 f=0 threads=512 */
      if (stage_on[0] && tid < 512)
        work_split_fft_rank1(stream_in + region_0(it - 0), buf_0_0__2_0 + region_0(it - 0), tid);
      break; }
    case 2: {
      /* (split_fft_rank2, k=6) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_split_fft_rank2(buf_1_0__10_0 + region_10(it - 3), buf_10_0__12_0 + region_10(it - 3), tid);
      /* (split_fft_rank2, k=5) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_split_fft_rank2(buf_1_0__10_0 + region_10(it - 3), buf_10_0__12_0 + region_10(it - 3), tid);
      /* (split_fft_rank2, k=4) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_split_fft_rank2(buf_1_0__10_0 + region_10(it - 3), buf_10_0__12_0 + region_10(it - 3), tid);
      /* (split_fft_rank2, k=3) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_split_fft_rank2(buf_1_0__10_0 + region_10(it - 3), buf_10_0__12_0 + region_10(it - 3), tid);
      /* (split_fft_rank2, k=2) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_split_fft_rank2(buf_1_0__10_0 + region_10(it - 3), buf_10_0__12_0 + region_10(it - 3), tid);
      /* (DFT8Tw_j2, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DFT8Tw_j2(buf_0_2__4_0 + region_4(it - 1), buf_4_0__1_2 + region_4(it - 1), tid);
      break; }
    case 3: {
      /* (join_fft_rank2, k=3) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_fft_rank2(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_fft_rank2, k=2) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_fft_rank2(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_fft_rank2, k=1) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_fft_rank2(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_fft_rank2, k=0) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_fft_rank2(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (split_fft_rank2, k=7) o=0 f=3 threads=512 */
      if (stage_on[3] && tid < 512)
        work_split_fft_rank2(buf_1_0__10_0 + region_10(it - 3), buf_10_0__12_0 + region_10(it - 3), tid);
      /* (DFT8Tw_j3, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DFT8Tw_j3(buf_0_3__5_0 + region_5(it - 1), buf_5_0__1_3 + region_5(it - 1), tid);
      break; }
    case 4: {
      /* (join_fft_rank2, k=7) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_fft_rank2(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_fft_rank2, k=6) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_fft_rank2(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_fft_rank2, k=5) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_fft_rank2(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (join_fft_rank2, k=4) o=0 f=5 threads=512 */
      if (stage_on[5] && tid < 512)
        work_join_fft_rank2(buf_12_0__11_0 + region_11(it - 5), stream_out + region_11(it - 5), tid);
      /* (DFT8Tw_j4, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DFT8Tw_j4(buf_0_4__6_0 + region_6(it - 1), buf_6_0__1_4 + region_6(it - 1), tid);
      break; }
    case 5: {
      /* (DFT8Tw_j5, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DFT8Tw_j5(buf_0_5__7_0 + region_7(it - 1), buf_7_0__1_5 + region_7(it - 1), tid);
      break; }
    case 6: {
      /* (DFT8Tw_j6, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DFT8Tw_j6(buf_0_6__8_0 + region_8(it - 1), buf_8_0__1_6 + region_8(it - 1), tid);
      break; }
    case 7: {
      /* (DFT8Tw_j7, k=0) o=0 f=1 threads=512 */
      if (stage_on[1] && tid < 512)
        work_DFT8Tw_j7(buf_0_7__9_0 + region_9(it - 1), buf_9_0__1_7 + region_9(it - 1), tid);
      break; }
    case 8: {
      /* (DFT8_k0, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DFT8_k0(buf_10_0__12_0 + region_12(it - 4), buf_12_0__11_0 + region_12(it - 4), tid);
      /* (join_fft_rank1, k=0) o=0 f=2 threads=512 */
      if (stage_on[2] && tid < 512)
        work_join_fft_rank1(buf_2_0__1_0 + region_1(it - 2), buf_1_0__10_0 + region_1(it - 2), tid);
      break; }
    case 9: {
      /* (DFT8_k1, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DFT8_k1(buf_10_1__13_0 + region_13(it - 4), buf_13_0__11_1 + region_13(it - 4), tid);
      break; }
    case 10: {
      /* (DFT8_k2, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DFT8_k2(buf_10_2__14_0 + region_14(it - 4), buf_14_0__11_2 + region_14(it - 4), tid);
      break; }
    case 11: {
      /* (DFT8_k3, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DFT8_k3(buf_10_3__15_0 + region_15(it - 4), buf_15_0__11_3 + region_15(it - 4), tid);
      break; }
    case 12: {
      /* (DFT8_k4, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DFT8_k4(buf_10_4__16_0 + region_16(it - 4), buf_16_0__11_4 + region_16(it - 4), tid);
      break; }
    case 13: {
      /* (DFT8_k5, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DFT8_k5(buf_10_5__17_0 + region_17(it - 4), buf_17_0__11_5 + region_17(it - 4), tid);
      break; }
    case 14: {
      /* (DFT8_k6, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DFT8_k6(buf_10_6__18_0 + region_18(it - 4), buf_18_0__11_6 + region_18(it - 4), tid);
      break; }
    case 15: {
      /* (DFT8_k7, k=0) o=0 f=4 threads=512 */
      if (stage_on[4] && tid < 512)
        work_DFT8_k7(buf_10_7__19_0 + region_19(it - 4), buf_19_0__11_7 + region_19(it - 4), tid);
      break; }
    }
    /* II boundary */
  }
}

int main()
{
  float* buf_0_0__2_0; cudaMalloc(&buf_0_0__2_0, 229376);
  float* buf_2_0__1_0; cudaMalloc(&buf_2_0__1_0, 229376);
  float* buf_0_1__3_0; cudaMalloc(&buf_0_1__3_0, 229376);
  float* buf_3_0__1_1; cudaMalloc(&buf_3_0__1_1, 229376);
  float* buf_0_2__4_0; cudaMalloc(&buf_0_2__4_0, 229376);
  float* buf_4_0__1_2; cudaMalloc(&buf_4_0__1_2, 229376);
  float* buf_0_3__5_0; cudaMalloc(&buf_0_3__5_0, 229376);
  float* buf_5_0__1_3; cudaMalloc(&buf_5_0__1_3, 229376);
  float* buf_0_4__6_0; cudaMalloc(&buf_0_4__6_0, 229376);
  float* buf_6_0__1_4; cudaMalloc(&buf_6_0__1_4, 229376);
  float* buf_0_5__7_0; cudaMalloc(&buf_0_5__7_0, 229376);
  float* buf_7_0__1_5; cudaMalloc(&buf_7_0__1_5, 229376);
  float* buf_0_6__8_0; cudaMalloc(&buf_0_6__8_0, 229376);
  float* buf_8_0__1_6; cudaMalloc(&buf_8_0__1_6, 229376);
  float* buf_0_7__9_0; cudaMalloc(&buf_0_7__9_0, 229376);
  float* buf_9_0__1_7; cudaMalloc(&buf_9_0__1_7, 229376);
  float* buf_10_0__12_0; cudaMalloc(&buf_10_0__12_0, 229376);
  float* buf_12_0__11_0; cudaMalloc(&buf_12_0__11_0, 229376);
  float* buf_10_1__13_0; cudaMalloc(&buf_10_1__13_0, 229376);
  float* buf_13_0__11_1; cudaMalloc(&buf_13_0__11_1, 229376);
  float* buf_10_2__14_0; cudaMalloc(&buf_10_2__14_0, 229376);
  float* buf_14_0__11_2; cudaMalloc(&buf_14_0__11_2, 229376);
  float* buf_10_3__15_0; cudaMalloc(&buf_10_3__15_0, 229376);
  float* buf_15_0__11_3; cudaMalloc(&buf_15_0__11_3, 229376);
  float* buf_10_4__16_0; cudaMalloc(&buf_10_4__16_0, 229376);
  float* buf_16_0__11_4; cudaMalloc(&buf_16_0__11_4, 229376);
  float* buf_10_5__17_0; cudaMalloc(&buf_10_5__17_0, 229376);
  float* buf_17_0__11_5; cudaMalloc(&buf_17_0__11_5, 229376);
  float* buf_10_6__18_0; cudaMalloc(&buf_10_6__18_0, 229376);
  float* buf_18_0__11_6; cudaMalloc(&buf_18_0__11_6, 229376);
  float* buf_10_7__19_0; cudaMalloc(&buf_10_7__19_0, 229376);
  float* buf_19_0__11_7; cudaMalloc(&buf_19_0__11_7, 229376);
  float* buf_1_0__10_0; cudaMalloc(&buf_1_0__10_0, 1835008);
  float *stream_in, *stream_out;
  /* input shuffled on the host per eq. (9) before upload */
  cudaMalloc(&stream_in, 1 << 20);
  cudaMalloc(&stream_out, 1 << 20);
  swp_kernel<<<16, 512>>>(buf_0_0__2_0, buf_2_0__1_0, buf_0_1__3_0, buf_3_0__1_1, buf_0_2__4_0, buf_4_0__1_2, buf_0_3__5_0, buf_5_0__1_3, buf_0_4__6_0, buf_6_0__1_4, buf_0_5__7_0, buf_7_0__1_5, buf_0_6__8_0, buf_8_0__1_6, buf_0_7__9_0, buf_9_0__1_7, buf_10_0__12_0, buf_12_0__11_0, buf_10_1__13_0, buf_13_0__11_1, buf_10_2__14_0, buf_14_0__11_2, buf_10_3__15_0, buf_15_0__11_3, buf_10_4__16_0, buf_16_0__11_4, buf_10_5__17_0, buf_17_0__11_5, buf_10_6__18_0, buf_18_0__11_6, buf_10_7__19_0, buf_19_0__11_7, buf_1_0__10_0, stream_in, stream_out, 1024);
  cudaDeviceSynchronize();
  return 0;
}
