(* Tests for the textual front end: lexer, parser, elaboration, and an
   end-to-end source-to-interpreter round trip. *)

open Streamit
open Types

let t name f = Alcotest.test_case name `Quick f

let toks src = List.map (fun (t, _, _) -> t) (Frontend.Lexer.tokenize src)

let lexer_tests =
  [
    t "numbers, idents, keywords" (fun () ->
        Alcotest.(check (list string)) "tokens"
          [ "filter"; "Foo"; "pop"; "2"; "push"; "1"; "<eof>" ]
          (List.map Frontend.Token.to_string (toks "filter Foo pop 2 push 1")));
    t "float literals" (fun () ->
        match toks "3.25 10" with
        | [ Frontend.Token.FLOAT f; Frontend.Token.INT 10; Frontend.Token.EOF ] ->
          Alcotest.(check (float 1e-9)) "f" 3.25 f
        | _ -> Alcotest.fail "bad tokens");
    t "operators" (fun () ->
        Alcotest.(check int) "count" 14 (* 13 operators + EOF *)
          (List.length (toks "<= >= == != << >> + - * / % & |")));
    t "comments skipped" (fun () ->
        Alcotest.(check int) "only eof" 1
          (List.length (toks "// line\n/* block\nmore */")));
    t "unterminated comment errors" (fun () ->
        try
          ignore (toks "/* oops");
          Alcotest.fail "expected lex error"
        with Frontend.Lexer.Lex_error _ -> ());
    t "bad character errors with position" (fun () ->
        try
          ignore (toks "a\n  $");
          Alcotest.fail "expected lex error"
        with Frontend.Lexer.Lex_error (_, line, _) ->
          Alcotest.(check int) "line" 2 line);
  ]

(* Token.to_string now renders FLOAT through the canonical formatter
   (Obs.Canon), and the lexer accepts the exponent forms that
   formatter can emit.  Round trip: printing any float token and
   re-lexing it must give back the same bits. *)
let roundtrip_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"float tokens round-trip through the lexer"
         ~count:300
         QCheck.(make Gen.(map abs_float float))
         (fun f ->
           QCheck.assume (Float.is_finite f);
           match toks (Obs.Canon.finite f) with
           | [ Frontend.Token.FLOAT g; Frontend.Token.EOF ] ->
             Int64.bits_of_float g = Int64.bits_of_float f
           | _ -> false));
    t "exponent forms lex as floats" (fun () ->
        List.iter
          (fun (src, want) ->
            match toks src with
            | [ Frontend.Token.FLOAT f; Frontend.Token.EOF ] ->
              Alcotest.(check (float 1e-9)) src want f
            | _ -> Alcotest.fail ("not a single FLOAT: " ^ src))
          [
            ("1e5", 1e5);
            ("1e+16", 1e16);
            ("1.5E-3", 1.5e-3);
            ("2.5e2", 250.0);
          ]);
    t "exponent needs digits: 16elems stays INT + IDENT" (fun () ->
        match toks "16elems" with
        | [ Frontend.Token.INT 16; Frontend.Token.IDENT "elems";
            Frontend.Token.EOF ] ->
          ()
        | _ -> Alcotest.fail "expected INT 16, IDENT elems");
    t "float token printing is canonical" (fun () ->
        Alcotest.(check string) "half" "0.5"
          (Frontend.Token.to_string (Frontend.Token.FLOAT 0.5));
        Alcotest.(check string) "integral" "3.0"
          (Frontend.Token.to_string (Frontend.Token.FLOAT 3.0)));
  ]

let simple_src =
  {|
filter Doubler pop 1 push 1 {
  push(pop() * 2.0);
}
filter Adder pop 2 push 1 {
  let a = pop();
  let b = pop();
  push(a + b);
}
pipeline Main {
  add Doubler;
  add Adder;
}
|}

let parser_tests =
  [
    t "parses filters and pipeline" (fun () ->
        let prog = Frontend.Parser.parse_program simple_src in
        Alcotest.(check string) "name" "Main" (Ast.name_of prog);
        Alcotest.(check int) "filters" 2 (Ast.num_filters prog));
    t "elaborated program runs" (fun () ->
        let g = Flatten.flatten (Frontend.Parser.parse_program simple_src) in
        let out =
          Interp.run_steady_states g
            ~input:(fun i -> VFloat (float_of_int i))
            ~iters:2
        in
        (* Doubler: 0 2 4 6 -> Adder: 2, 10 *)
        Alcotest.(check bool) "values" true
          (List.for_all2 equal_value out [ VFloat 2.0; VFloat 10.0 ]));
    t "splitjoin with weights" (fun () ->
        let src =
          {|
filter Id pop 1 push 1 { push(pop()); }
filter Neg pop 1 push 1 { push(0.0 - pop()); }
splitjoin SJ {
  split roundrobin(1, 1);
  add Id;
  add Neg;
  join roundrobin(1, 1);
}
|}
        in
        let g = Flatten.flatten (Frontend.Parser.parse_program src) in
        let out =
          Interp.run_steady_states g
            ~input:(fun i -> VFloat (float_of_int (i + 1)))
            ~iters:2
        in
        Alcotest.(check bool) "values" true
          (List.for_all2 equal_value out
             [ VFloat 1.0; VFloat (-2.0); VFloat 3.0; VFloat (-4.0) ]));
    t "peek and int filters" (fun () ->
        let src =
          {|
filter Diff int pop 1 push 1 peek 2 {
  push(peek(1) - peek(0));
  let _d = pop();
}
|}
        in
        let g = Flatten.flatten (Frontend.Parser.parse_program src) in
        let out =
          Interp.run_steady_states g ~input:(fun i -> VInt (i * i)) ~iters:4
        in
        (* differences of squares: 1, 3, 5, 7 *)
        Alcotest.(check (list int)) "diffs" [ 1; 3; 5; 7 ]
          (List.map to_int out));
    t "tables parse and resolve" (fun () ->
        let src =
          {|
filter Weighted pop 2 push 1 {
  table w = [0.25, 0.75];
  push(pop() * w[0] + pop() * w[1]);
}
|}
        in
        let g = Flatten.flatten (Frontend.Parser.parse_program src) in
        let out =
          Interp.run_steady_states g
            ~input:(fun i -> VFloat (float_of_int (i + 1)))
            ~iters:1
        in
        Alcotest.(check bool) "weighted" true
          (List.for_all2 equal_value out [ VFloat ((1.0 *. 0.25) +. (2.0 *. 0.75)) ]));
    t "for loops and arrays" (fun () ->
        let src =
          {|
filter Rev pop 4 push 4 {
  array w[4];
  for j = 0 to 4 { w[j] = pop(); }
  for j = 0 to 4 { push(w[3 - j]); }
}
|}
        in
        let g = Flatten.flatten (Frontend.Parser.parse_program src) in
        let out =
          Interp.run_steady_states g ~input:(fun i -> VFloat (float_of_int i)) ~iters:1
        in
        Alcotest.(check bool) "reversed" true
          (List.for_all2 equal_value out
             [ VFloat 3.0; VFloat 2.0; VFloat 1.0; VFloat 0.0 ]));
    t "declared rates checked at parse time" (fun () ->
        let src = "filter Bad pop 1 push 2 { push(pop()); }" in
        try
          ignore (Frontend.Parser.parse_program src);
          Alcotest.fail "expected parse error"
        with Frontend.Parser.Parse_error _ -> ());
    t "unknown stream reference rejected" (fun () ->
        let src = "pipeline P { add Ghost; }" in
        try
          ignore (Frontend.Parser.parse_program src);
          Alcotest.fail "expected parse error"
        with Frontend.Parser.Parse_error _ -> ());
    t "syntax error carries position" (fun () ->
        let src = "filter F pop 1 push 1 {\n  push(;\n}" in
        try
          ignore (Frontend.Parser.parse_program src);
          Alcotest.fail "expected parse error"
        with Frontend.Parser.Parse_error (_, line, _) ->
          Alcotest.(check int) "line" 2 line);
    t "parsed program compiles to the GPU" (fun () ->
        let g = Flatten.flatten (Frontend.Parser.parse_program simple_src) in
        match Swp_core.Compile.compile g with
        | Ok c ->
          Alcotest.(check (result unit string)) "schedule" (Ok ())
            (Swp_core.Swp_schedule.validate g c.Swp_core.Compile.schedule)
        | Error m -> Alcotest.fail m);
  ]

let suite = lexer_tests @ roundtrip_tests @ parser_tests
