(* Tests for the lib/check fuzzing subsystem, plus minimized regression
   tests for the bugs the fuzzer flushed out in this round:

   - Fifo.clear left the lifetime counters stale;
   - Buffer_layout.pop_index ignored the producer's layout (eq. 11);
   - Instances.deps shifted the dependence window's lower bound by the
     peek margin, dropping real dependences (and dropped every
     initial-token-covered dependence instead of emitting its negative
     jlag);
   - Mii.rec_mii diverged on dependence cycles with no loop-carried slack
     (feedback loops whose initial tokens cannot cover one blocked
     iteration).  *)

open Streamit

let t name f = Alcotest.test_case name `Quick f

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---- deterministic filter constructors ------------------------------- *)

let simple ~name ~pop ~push = Check.Shrink.simple_filter ~name ~pop ~push

let peeker ~name ~pop ~push ~peek =
  let p = pop and u = push and pk = peek in
  let open Kernel.Build in
  let body =
    [
      arr "w" pk;
      for_ "j" (i 0) (i pk) [ seti "w" (v "j") (Kernel.Build.peek (v "j")) ];
    ]
    @ List.init p (fun j -> let_ (Printf.sprintf "d%d" j) Kernel.Pop)
    @ List.init u (fun j ->
          Kernel.Push
            (geti "w" (i (j mod pk)) +: geti "w" (i ((j + 1) mod pk))))
  in
  Kernel.make_filter ~name ~pop:p ~push:u ~peek:pk body

let input i = Types.VFloat (float_of_int (i mod 13))

(* ---- Fifo.clear regression ------------------------------------------- *)

let fifo_clear () =
  let q = Fifo.create () in
  Fifo.push_many q [ 1; 2; 3 ];
  ignore (Fifo.pop q);
  Fifo.clear q;
  Alcotest.(check int) "length" 0 (Fifo.length q);
  Alcotest.(check int) "total_pushed" 0 (Fifo.total_pushed q);
  Alcotest.(check int) "total_popped" 0 (Fifo.total_popped q);
  Alcotest.(check int) "max_occupancy" 0 (Fifo.max_occupancy q);
  (* and the channel is fully usable again *)
  Fifo.push q 7;
  Alcotest.(check int) "reuse pop" 7 (Fifo.pop q);
  Alcotest.(check int) "reuse total_pushed" 1 (Fifo.total_pushed q)

(* ---- layout map properties (QCheck) ---------------------------------- *)

(* Eq. (10): the push map permutes the region [0, rate*threads). *)
let push_map_bijection =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"push map is a bijection on its region" ~count:60
       QCheck.(pair (int_range 1 16) (int_range 1 4))
       (fun (rate, tmul) ->
         let threads = 128 * tmul in
         let n_tokens = rate * threads in
         let seen = Array.make n_tokens false in
         for tid = 0 to threads - 1 do
           for n = 0 to rate - 1 do
             let a = Swp_core.Buffer_layout.push_index ~rate ~n ~tid in
             if a < 0 || a >= n_tokens || seen.(a) then
               QCheck.Test.fail_reportf "collision/out-of-range at %d" a;
             seen.(a) <- true
           done
         done;
         Array.for_all Fun.id seen))

(* The push map must be the device shuffle (9) — one definition, eq. (10),
   shared with the memory simulator. *)
let push_map_is_shuffle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"push map agrees with Coalesce.shuffled_index" ~count:60
       QCheck.(triple (int_range 1 16) (int_range 1 4) (int_range 0 4095))
       (fun (rate, tmul, pick) ->
         let threads = 128 * tmul in
         let tid = pick mod threads in
         let n = pick mod rate in
         Swp_core.Buffer_layout.push_index ~rate ~n ~tid
         = Gpusim.Coalesce.shuffled_index ~rate ~cluster:128 ~n tid))

(* Eq. (11) on a rate-matched edge: popping through the producer's layout
   visits every region slot exactly once. *)
let pop_map_bijection =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"pop map is a bijection (rate-matched)" ~count:40
       QCheck.(pair (int_range 1 12) (int_range 1 4))
       (fun (rate, tmul) ->
         let threads = 128 * tmul in
         let n_tokens = rate * threads in
         let seen = Array.make n_tokens false in
         for tid = 0 to threads - 1 do
           for n = 0 to rate - 1 do
             let a =
               Swp_core.Buffer_layout.pop_index ~push_rate:rate ~pop_rate:rate
                 ~n ~tid
             in
             if a < 0 || a >= n_tokens || seen.(a) then
               QCheck.Test.fail_reportf "collision/out-of-range at %d" a;
             seen.(a) <- true
           done
         done;
         Array.for_all Fun.id seen))

(* Multirate: the pop map must address the *producer's* layout at stream
   token s = tid*pop + n, for any (push, pop) rate pair. *)
let pop_map_multirate =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"pop map addresses the producer's layout"
       ~count:100
       QCheck.(
         triple (int_range 1 8) (int_range 1 8) (pair (int_range 0 511) (int_range 0 7)))
       (fun (push_rate, pop_rate, (tid, n0)) ->
         let n = n0 mod pop_rate in
         let s = (tid * pop_rate) + n in
         Swp_core.Buffer_layout.pop_index ~push_rate ~pop_rate ~n ~tid
         = Swp_core.Buffer_layout.push_index ~rate:push_rate
             ~n:(s mod push_rate) ~tid:(s / push_rate)))

(* ---- Swp_schedule.validate (8b) boundary ----------------------------- *)

(* Hand-built two-filter pipeline and config so the dependence set is the
   single edge dep (A,0) -> (B,0) with jlag 0 plus nothing else; then
   probe validate at the exact (8a)/(8b) boundaries. *)
let boundary_fixture () =
  let s =
    Ast.pipeline "p"
      [
        Ast.Filter (simple ~name:"A" ~pop:1 ~push:1);
        Ast.Filter (simple ~name:"B" ~pop:1 ~push:1);
      ]
  in
  let g = Flatten.flatten s in
  let cfg =
    {
      Swp_core.Select.regs = 16;
      block_threads = 512;
      threads = [| 512; 512 |];
      delay = [| 10; 10 |];
      reps = [| 1; 1 |];
      scale = 1;
      norm_ii = 0.0;
      scoreboard = [];
    }
  in
  (g, cfg)

let mk_sched cfg ~ii entries =
  {
    Swp_core.Swp_schedule.ii;
    entries =
      List.map
        (fun (node, sm, o, f) ->
          {
            Swp_core.Swp_schedule.inst = { Swp_core.Instances.node; k = 0 };
            sm;
            o;
            f;
          })
        entries;
    num_sms = 2;
    config = cfg;
  }

let validate_8b_boundary () =
  let g, cfg = boundary_fixture () in
  let ok s = Alcotest.(check bool) "valid" true (Swp_core.Swp_schedule.validate g s = Ok ()) in
  let err part s =
    match Swp_core.Swp_schedule.validate g s with
    | Ok () -> Alcotest.failf "expected %s violation" part
    | Error m ->
      if not (contains_sub m part) then
        Alcotest.failf "expected %s in error, got: %s" part m
  in
  (* cross-SM at the boundary: T*fv + ov = T*(jlag + fu + 1) exactly *)
  ok (mk_sched cfg ~ii:50 [ (0, 0, 0, 0); (1, 1, 0, 1) ]);
  (* cross-SM with slack in the offset *)
  ok (mk_sched cfg ~ii:50 [ (0, 0, 0, 0); (1, 1, 30, 1) ]);
  (* cross-SM one stage short: any in-range offset is below the boundary *)
  err "(8b)" (mk_sched cfg ~ii:50 [ (0, 0, 0, 0); (1, 1, 39, 0) ]);
  (* same SM at the (8a) boundary: a_dst = a_src + d_src *)
  ok (mk_sched cfg ~ii:50 [ (0, 0, 0, 0); (1, 0, 10, 0) ]);
  (* same SM one cycle short of the producer's delay *)
  err "violated" (mk_sched cfg ~ii:50 [ (0, 0, 0, 0); (1, 0, 9, 0) ])

(* ---- Instances.deps peek-margin regression --------------------------- *)

let deps_of g =
  match Swp_core.Compile.compile g with
  | Error m -> Alcotest.failf "compile failed: %s" m
  | Ok c -> (c, Swp_core.Instances.deps g c.Swp_core.Compile.config)

let has_dep deps ~src ~src_k ~dst ~dst_k ~jlag =
  List.exists
    (fun (d : Swp_core.Instances.dep) ->
      d.Swp_core.Instances.src.Swp_core.Instances.node = src
      && d.Swp_core.Instances.src.Swp_core.Instances.k = src_k
      && d.Swp_core.Instances.dst.Swp_core.Instances.node = dst
      && d.Swp_core.Instances.dst.Swp_core.Instances.k = dst_k
      && d.Swp_core.Instances.jlag = jlag)
    deps

(* A(push 1) -> B(pop 2, peek 4).  Flatten materialises the peek margin as
   two initial tokens, so consumer instance 0 reaches two tokens back into
   the previous iteration's producer instance 1: the dependence
   (A,1) -[jlag -1]-> (B,0) must exist.  The pre-fix window shifted its
   lower bound by the peek margin and dropped it. *)
let deps_peek_lower_bound () =
  let s =
    Ast.pipeline "p"
      [
        Ast.Filter (simple ~name:"A" ~pop:1 ~push:1);
        Ast.Filter (peeker ~name:"B" ~pop:2 ~push:1 ~peek:4);
      ]
  in
  let g = Flatten.flatten s in
  let c, deps = deps_of g in
  Alcotest.(check bool)
    "loop-carried peek dep present" true
    (has_dep deps ~src:0 ~src_k:1 ~dst:1 ~dst_k:0 ~jlag:(-1));
  Alcotest.(check bool)
    "same-iteration deps present" true
    (has_dep deps ~src:0 ~src_k:0 ~dst:1 ~dst_k:0 ~jlag:0
    && has_dep deps ~src:0 ~src_k:1 ~dst:1 ~dst_k:0 ~jlag:0);
  match Swp_core.Funcsim.matches_interpreter c ~input ~iters:2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "funcsim diverged: %s" m

(* The shape fuzz seed 76 shrank to: a duplicate split-join whose peeking
   branch is offset against the splitter's instances, so the straddling
   dependences (splitter,1)->(B,1) and (splitter,3)->(B,2) only appear
   with the corrected window. *)
let deps_splitjoin_peek () =
  let s =
    Ast.pipeline "p"
      [
        Ast.Filter (simple ~name:"F1" ~pop:1 ~push:1);
        Ast.Filter (simple ~name:"F2" ~pop:1 ~push:2);
        Ast.duplicate_sj "sj"
          [
            Ast.pipeline "pb"
              [
                Ast.Filter (simple ~name:"F3" ~pop:3 ~push:2);
                Ast.Filter (simple ~name:"F5" ~pop:1 ~push:2);
              ];
            Ast.Filter (peeker ~name:"B7" ~pop:2 ~push:3 ~peek:4);
          ]
          [ 8; 9 ];
      ]
  in
  let g = Flatten.flatten s in
  let c, deps = deps_of g in
  (* locate the splitter and the peeking filter by structure, not by id *)
  let b7 = ref (-1) and sj = ref (-1) in
  Array.iter
    (fun (nd : Graph.node) ->
      match nd.Graph.kind with
      | Graph.NFilter f when f.Kernel.name = "B7" -> b7 := nd.Graph.id
      | Graph.NSplitter _ -> sj := nd.Graph.id
      | _ -> ())
    g.Graph.nodes;
  Alcotest.(check bool)
    "straddling dependences present" true
    (has_dep deps ~src:!sj ~src_k:1 ~dst:!b7 ~dst_k:1 ~jlag:0
    && has_dep deps ~src:!sj ~src_k:3 ~dst:!b7 ~dst_k:2 ~jlag:0);
  match Swp_core.Funcsim.matches_interpreter c ~input ~iters:2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "funcsim diverged: %s" m

(* ---- Mii termination regression -------------------------------------- *)

(* A feedback loop whose two initial tokens cannot cover one blocked
   (512-thread, scaled) iteration: the instance dependence graph has a
   cycle whose jlag terms cancel, so no II is feasible.  Pre-fix the
   RecMII doubling search diverged on exactly this graph (fuzz seed 5);
   now it must be rejected with a diagnostic. *)
let unschedulable_feedback () =
  let s =
    Ast.pipeline "p"
      [
        Ast.Filter (simple ~name:"F" ~pop:1 ~push:1);
        Ast.Feedback_loop
          {
            name = "fb";
            join_weights = (1, 1);
            body = Ast.Filter (simple ~name:"L" ~pop:1 ~push:1);
            split_weights = (2, 2);
            delay = List.init 2 (fun i -> Types.VFloat (float_of_int i));
          };
      ]
  in
  let g = Flatten.flatten s in
  match Swp_core.Compile.compile g with
  | Ok _ -> Alcotest.fail "expected compile to reject the feedback loop"
  | Error m ->
    if not (contains_sub m "unschedulable") then
      Alcotest.failf "expected an unschedulable diagnostic, got: %s" m

(* ---- generator sanity ------------------------------------------------- *)

let generator_admissible () =
  for seed = 1 to 30 do
    let s = Check.Gen.stream ~seed () in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d admissible" seed)
      true
      (Check.Gen.admissible s)
  done

let generator_deterministic () =
  let a = Check.Gen.stream ~seed:7 () in
  let b = Check.Gen.stream ~seed:7 () in
  let str s = Format.asprintf "%a" Ast.pp s in
  Alcotest.(check string) "same program" (str a) (str b)

(* ---- shrinker --------------------------------------------------------- *)

let shrinker_reduces () =
  (* a property failing on any program with >= 2 nodes must shrink a
     four-stage pipeline to exactly two (one filter cannot keep the
     failure alive) *)
  let s =
    Ast.pipeline "p"
      (List.init 4 (fun i ->
           Ast.Filter
             (simple ~name:(Printf.sprintf "S%d" i) ~pop:(1 + (i mod 2)) ~push:1)))
  in
  let count s =
    let g = Flatten.flatten s in
    Array.length g.Graph.nodes
  in
  let still_fails cand = count cand >= 2 in
  let small, steps = Check.Shrink.shrink ~still_fails s in
  Alcotest.(check bool) "took steps" true (steps > 0);
  Alcotest.(check int) "minimal" 2 (count small)

(* ---- fixed-seed differential smoke ----------------------------------- *)

(* The pinned-seed fuzz run: every seed must pass or be skipped for a
   legitimate reason; a failure aborts the suite with the shrunk
   counterexample pretty-printed. *)
let fuzz_smoke () =
  let stats, failures = Check.Fuzz.run ~seeds:20 ~base_seed:1 () in
  List.iter
    (fun f -> Format.eprintf "%a@." Check.Fuzz.pp_failure f)
    failures;
  (match failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "fuzz failure (seed %d): %s" f.Check.Fuzz.seed
      f.Check.Fuzz.message);
  Alcotest.(check int) "all seeds accounted" 20
    (stats.Check.Fuzz.passed + stats.Check.Fuzz.skipped);
  Alcotest.(check bool) "most seeds exercised the pipeline" true
    (stats.Check.Fuzz.passed >= 8)

(* Seed-sharded fuzzing must visit exactly the serial run's seed set and
   report exactly its outcomes: generation is deterministic in the seed
   alone (domain-local name counters) and the pool joins in seed
   order. *)
let fuzz_sharding_deterministic () =
  let serial_stats, serial_failures =
    Check.Fuzz.run ~seeds:12 ~base_seed:201 ~jobs:1 ()
  in
  let par_stats, par_failures =
    Check.Fuzz.run ~seeds:12 ~base_seed:201 ~jobs:3 ()
  in
  Alcotest.(check bool) "stats identical" true (serial_stats = par_stats);
  Alcotest.(check (list int))
    "failing seeds identical"
    (List.map (fun f -> f.Check.Fuzz.seed) serial_failures)
    (List.map (fun f -> f.Check.Fuzz.seed) par_failures);
  Alcotest.(check (list string))
    "failure messages identical"
    (List.map (fun f -> f.Check.Fuzz.message) serial_failures)
    (List.map (fun f -> f.Check.Fuzz.message) par_failures)

let suite =
  [
    t "fifo clear resets lifetime counters" fifo_clear;
    push_map_bijection;
    push_map_is_shuffle;
    pop_map_bijection;
    pop_map_multirate;
    t "validate (8a)/(8b) boundaries" validate_8b_boundary;
    t "deps include peek-margin window (regression)" deps_peek_lower_bound;
    t "deps straddle split-join instances (regression)" deps_splitjoin_peek;
    t "unschedulable feedback loop rejected (regression)" unschedulable_feedback;
    t "generator emits admissible programs" generator_admissible;
    t "generator is deterministic per seed" generator_deterministic;
    t "shrinker reaches a minimal counterexample" shrinker_reduces;
    t "differential fuzz smoke (pinned seeds)" fuzz_smoke;
    t "seed-sharded fuzzing matches serial" fuzz_sharding_deterministic;
  ]
