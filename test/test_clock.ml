(* The single substitutable wall clock (Resil.Clock) and the
   clock-domain bugfix it carries: every deadline reader — Budget wall
   guards, the solver stack's time limits, Compile's stage spends —
   goes through Clock.now, so a test can drive time deterministically
   and `--jobs N` no longer inflates elapsed time the way the old
   Sys.time (process CPU time) reads did. *)

let t name f = Alcotest.test_case name `Quick f

let feq = Alcotest.(check (float 1e-9))

let clock_tests =
  [
    t "ticker advances by step" (fun () ->
        let src = Resil.Clock.ticker ~t0:100.0 ~step:2.5 () in
        feq "first" 100.0 (src ());
        feq "second" 102.5 (src ());
        feq "third" 105.0 (src ()));
    t "now clamps a retreating source" (fun () ->
        let vals = ref [ 5.0; 3.0; 10.0; 1.0 ] in
        let src () =
          match !vals with
          | x :: r ->
            vals := r;
            x
          | [] -> 99.0
        in
        Resil.Clock.with_source src (fun () ->
            feq "first read" 5.0 (Resil.Clock.now ());
            feq "retreat clamped" 5.0 (Resil.Clock.now ());
            feq "advance passes" 10.0 (Resil.Clock.now ());
            feq "retreat clamped again" 10.0 (Resil.Clock.now ())));
    t "with_source restores the real clock, even on exception" (fun () ->
        let before = Unix.gettimeofday () in
        (try
           Resil.Clock.with_source
             (fun () -> 0.0)
             (fun () ->
               feq "fake active" 0.0 (Resil.Clock.now ());
               failwith "boom")
         with Failure _ -> ());
        Alcotest.(check bool) "real clock back" true
          (Resil.Clock.now () >= before));
  ]

let budget_tests =
  [
    t "wall deadline fires on the fake clock" (fun () ->
        Resil.Clock.with_source
          (Resil.Clock.ticker ~t0:0.0 ~step:10.0 ())
          (fun () ->
            let b = Resil.Budget.create ~label:"w" ~wall_s:5.0 () in
            Alcotest.(check bool) "expired after one 10s tick" true
              (Resil.Budget.over b);
            match Resil.Budget.exhausted_reason b with
            | Some Resil.Budget.Wall -> ()
            | _ -> Alcotest.fail "expected Wall exhaustion"));
    t "frozen clock never expires a wall deadline" (fun () ->
        Resil.Clock.with_source
          (fun () -> 7.0)
          (fun () ->
            let b = Resil.Budget.create ~wall_s:0.5 () in
            for _ = 1 to 1000 do
              Resil.Budget.charge b 1
            done;
            Alcotest.(check bool) "still alive" false (Resil.Budget.over b)));
  ]

(* The regression the bugfix exists for: a compile under `--deadline`
   must measure *wall* time.  Under a frozen clock no wall time ever
   passes, so even a microscopic deadline must not degrade the compile
   — at --jobs 1 and at --jobs 4 alike.  (The old Sys.time readers
   measured process CPU time, which still advances under a frozen wall
   clock and advances ~N x faster with N domains busy, so this test
   fails on them both serially and, worse, in parallel.) *)

let graph () = Streamit.Flatten.flatten (Benchmarks.Fm_radio.stream ())

let compile_frozen jobs =
  Par.Pool.set_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Par.Pool.set_jobs 1)
    (fun () ->
      Resil.Clock.with_source
        (fun () -> 1234.5)
        (fun () ->
          Swp_core.Profile.clear_cache ();
          match
            Swp_core.Compile.compile ~deadline:0.001 ~coarsening:8 (graph ())
          with
          | Error m -> Alcotest.fail m
          | Ok c -> c))

let deadline_tests =
  [
    t "deadline is wall-clock-correct at --jobs 1" (fun () ->
        let c = compile_frozen 1 in
        Alcotest.(check bool) "not degraded under frozen clock" true
          (c.Swp_core.Compile.quality <> Swp_core.Compile.Degraded));
    t "deadline is wall-clock-correct at --jobs 4" (fun () ->
        let c1 = compile_frozen 1 and c4 = compile_frozen 4 in
        Alcotest.(check bool) "not degraded under frozen clock" true
          (c4.Swp_core.Compile.quality <> Swp_core.Compile.Degraded);
        Alcotest.(check string) "same schedule as --jobs 1"
          (Swp_core.Report.schedule_signature c1)
          (Swp_core.Report.schedule_signature c4));
    t "jumping clock does expire the deadline" (fun () ->
        (* One hour per clock read blows a 1s deadline immediately.
           Depending on which stage notices first this is either a
           structured budget-exhausted Error (profile/select) or a
           Degraded compile (search) — never a full-quality result. *)
        Resil.Clock.with_source
          (Resil.Clock.ticker ~t0:0.0 ~step:3600.0 ())
          (fun () ->
            Swp_core.Profile.clear_cache ();
            match
              Swp_core.Compile.compile ~deadline:1.0 ~coarsening:8 (graph ())
            with
            | Error m ->
              let contains sub =
                let n = String.length m and k = String.length sub in
                let rec go i = i + k <= n && (String.sub m i k = sub || go (i + 1)) in
                go 0
              in
              Alcotest.(check bool) ("structured exhaustion: " ^ m) true
                (contains "budget exhausted")
            | Ok c ->
              Alcotest.(check bool) "degraded" true
                (c.Swp_core.Compile.quality = Swp_core.Compile.Degraded)));
  ]

let suite = clock_tests @ budget_tests @ deadline_tests
