open Numeric

let check_rat = Alcotest.testable Rat.pp Rat.equal
let t name f = Alcotest.test_case name `Quick f
let q = Rat.of_ints

let arb_rat =
  QCheck.make ~print:Rat.to_string
    QCheck.Gen.(
      map2
        (fun n d -> Rat.of_ints n (if d = 0 then 1 else d))
        (int_range (-10000) 10000)
        (int_range (-500) 500))

let unit_tests =
  [
    t "canonical form" (fun () ->
        Alcotest.(check string) "6/-4" "-3/2" (Rat.to_string (q 6 (-4)));
        Alcotest.(check string) "0/5" "0" (Rat.to_string (q 0 5));
        Alcotest.(check string) "4/2" "2" (Rat.to_string (q 4 2)));
    t "zero denominator raises" (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (q 1 0)));
    t "of_string forms" (fun () ->
        Alcotest.check check_rat "int" (Rat.of_int 7) (Rat.of_string "7");
        Alcotest.check check_rat "frac" (q 1 3) (Rat.of_string "2/6");
        Alcotest.check check_rat "neg" (q (-1) 3) (Rat.of_string "-2/6"));
    t "floor and ceil" (fun () ->
        Alcotest.(check int) "floor 7/2" 3 (Bigint.to_int (Rat.floor (q 7 2)));
        Alcotest.(check int) "ceil 7/2" 4 (Bigint.to_int (Rat.ceil (q 7 2)));
        Alcotest.(check int) "floor -7/2" (-4) (Bigint.to_int (Rat.floor (q (-7) 2)));
        Alcotest.(check int) "ceil -7/2" (-3) (Bigint.to_int (Rat.ceil (q (-7) 2)));
        Alcotest.(check int) "floor int" 5 (Bigint.to_int (Rat.floor (Rat.of_int 5))));
    t "arithmetic" (fun () ->
        Alcotest.check check_rat "1/2+1/3" (q 5 6) (Rat.add (q 1 2) (q 1 3));
        Alcotest.check check_rat "1/2*2/3" (q 1 3) (Rat.mul (q 1 2) (q 2 3));
        Alcotest.check check_rat "div" (q 3 4) (Rat.div (q 1 2) (q 2 3)));
    t "inv of zero raises" (fun () ->
        Alcotest.check_raises "inv0" Division_by_zero (fun () ->
            ignore (Rat.inv Rat.zero)));
    t "to_float" (fun () ->
        Alcotest.(check (float 1e-12)) "3/4" 0.75 (Rat.to_float (q 3 4)));
    t "to_int on integers only" (fun () ->
        Alcotest.(check int) "5" 5 (Rat.to_int (Rat.of_int 5));
        Alcotest.check_raises "non-int" (Failure "Rat.to_int: not an integer")
          (fun () -> ignore (Rat.to_int (q 1 2))));
    t "is_integer" (fun () ->
        Alcotest.(check bool) "4/2" true (Rat.is_integer (q 4 2));
        Alcotest.(check bool) "1/2" false (Rat.is_integer (q 1 2)));
  ]

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* --- Tier cross-validation: fast native path vs Bigint reference --- *)

let pow2 e = Bigint.pow (Bigint.of_int 2) e
let small_lim = Bigint.of_int (1 lsl 30)

(* Rationals spanning both tiers: scaling by 2^0..2^45 pushes the
   numerator and/or denominator across the 2^30 small-tier bound, so
   pairs drawn from this generator hit small/small, small/big, big/small
   and big/big operand combinations. *)
let arb_rat_wide =
  QCheck.make ~print:Rat.to_string
    QCheck.Gen.(
      map3
        (fun n d (en, ed) ->
          let scale x e = Bigint.mul (Bigint.of_int x) (pow2 e) in
          Rat.make (scale n en) (scale (if d = 0 then 1 else d) ed))
        (int_range (-10000) 10000)
        (int_range (-500) 500)
        (pair (int_range 0 45) (int_range 0 45)))

(* Canonical form always demotes: a value lives in the fast tier exactly
   when its canonical numerator and denominator fit under 2^30.  Together
   with value equality this makes results bit-identical across tiers. *)
let tier_canonical r =
  Rat.is_small r
  = (Bigint.lt (Bigint.abs (Rat.num r)) small_lim
    && Bigint.lt (Rat.den r) small_lim)

(* Naive cross-product formulas over Bigint, canonicalized by [Rat.make]:
   the generic slow path every fast-tier special case must agree with. *)
let ref_add a b =
  let open Bigint.Infix in
  Rat.make
    ((Rat.num a * Rat.den b) + (Rat.num b * Rat.den a))
    (Rat.den a * Rat.den b)

let ref_sub a b =
  let open Bigint.Infix in
  Rat.make
    ((Rat.num a * Rat.den b) - (Rat.num b * Rat.den a))
    (Rat.den a * Rat.den b)

let ref_mul a b =
  Rat.make (Bigint.mul (Rat.num a) (Rat.num b))
    (Bigint.mul (Rat.den a) (Rat.den b))

let ref_div a b =
  Rat.make (Bigint.mul (Rat.num a) (Rat.den b))
    (Bigint.mul (Rat.den a) (Rat.num b))

let lim = 1 lsl 30

let tier_unit_tests =
  [
    t "promotion and demotion at the 2^30 boundary" (fun () ->
        let x = Rat.of_int (lim - 1) in
        Alcotest.(check bool) "below bound is small" true (Rat.is_small x);
        let y = Rat.add x Rat.one in
        Alcotest.(check bool) "2^30 promoted" false (Rat.is_small y);
        Alcotest.check check_rat "promoted value" (Rat.of_bigint (pow2 30)) y;
        let z = Rat.sub y Rat.one in
        Alcotest.(check bool) "demoted back" true (Rat.is_small z);
        Alcotest.check check_rat "roundtrip" x z);
    t "denominator promotion" (fun () ->
        let x = Rat.make Bigint.one (pow2 30) in
        Alcotest.(check bool) "1/2^30 is big" false (Rat.is_small x);
        let y = Rat.mul x (Rat.of_int 2) in
        Alcotest.(check bool) "1/2^29 is small" true (Rat.is_small y));
    t "cross-tier arithmetic is exact" (fun () ->
        let big = Rat.of_bigint (pow2 100) in
        let r = Rat.sub (Rat.add big (q 1 3)) big in
        Alcotest.check check_rat "residual" (q 1 3) r;
        Alcotest.(check bool) "demoted" true (Rat.is_small r));
    t "to_float survives huge magnitudes" (fun () ->
        (* 10^320 / 10^300 = 10^20: both sides exceed the float range, so
           naive float division gives inf/inf = nan *)
        let p10 e = Bigint.pow (Bigint.of_int 10) e in
        let x = Rat.to_float (Rat.make (p10 320) (p10 300)) in
        Alcotest.(check bool) "1e20" true (abs_float (x -. 1e20) <= 1e6);
        let y = Rat.to_float (Rat.make Bigint.one (p10 25)) in
        Alcotest.(check bool) "1e-25" true (abs_float (y -. 1e-25) <= 1e-34));
    t "to_float saturates and underflows" (fun () ->
        let p10 e = Bigint.pow (Bigint.of_int 10) e in
        Alcotest.(check bool) "inf" true
          (Rat.to_float (Rat.of_bigint (p10 320)) = infinity);
        Alcotest.(check bool) "-inf" true
          (Rat.to_float (Rat.neg (Rat.of_bigint (p10 320))) = neg_infinity);
        Alcotest.(check (float 0.)) "smallest subnormal exact"
          (ldexp 1. (-1074))
          (Rat.to_float (Rat.make Bigint.one (pow2 1074)));
        Alcotest.(check (float 0.)) "underflow to zero" 0.
          (Rat.to_float (Rat.make Bigint.one (pow2 1080))));
  ]

let cross_pair = QCheck.pair arb_rat_wide arb_rat_wide

let tier_property_tests =
  [
    prop "wide gen is canonical and tier-correct" 500 arb_rat_wide (fun a ->
        tier_canonical a
        && Bigint.sign (Rat.den a) = 1
        && (Rat.is_zero a
           || Bigint.equal Bigint.one (Bigint.gcd (Rat.num a) (Rat.den a))));
    prop "add matches Bigint reference across tiers" 500 cross_pair
      (fun (a, b) ->
        let r = Rat.add a b in
        Rat.equal r (ref_add a b) && tier_canonical r);
    prop "sub matches Bigint reference across tiers" 500 cross_pair
      (fun (a, b) ->
        let r = Rat.sub a b in
        Rat.equal r (ref_sub a b) && tier_canonical r);
    prop "mul matches Bigint reference across tiers" 500 cross_pair
      (fun (a, b) ->
        let r = Rat.mul a b in
        Rat.equal r (ref_mul a b) && tier_canonical r);
    prop "div matches Bigint reference across tiers" 500 cross_pair
      (fun (a, b) ->
        QCheck.assume (not (Rat.is_zero b));
        let r = Rat.div a b in
        Rat.equal r (ref_div a b) && tier_canonical r);
    prop "compare matches Bigint cross products" 500 cross_pair
      (fun (a, b) ->
        compare (Rat.compare a b) 0
        = compare
            (Bigint.compare
               (Bigint.mul (Rat.num a) (Rat.den b))
               (Bigint.mul (Rat.num b) (Rat.den a)))
            0);
    prop "to_float agrees with float division in range" 300 arb_rat (fun a ->
        let f = Rat.to_float a
        and r = Bigint.to_float (Rat.num a) /. Bigint.to_float (Rat.den a) in
        abs_float (f -. r) <= 1e-12 *. Float.max 1. (abs_float r));
  ]

let property_tests =
  [
    prop "add commutative" 300 (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    prop "mul inverse" 300 arb_rat (fun a ->
        QCheck.assume (not (Rat.is_zero a));
        Rat.equal Rat.one (Rat.mul a (Rat.inv a)));
    prop "add then sub roundtrip" 300 (QCheck.pair arb_rat arb_rat)
      (fun (a, b) -> Rat.equal a (Rat.sub (Rat.add a b) b));
    prop "canonical: gcd(num,den)=1" 300 arb_rat (fun a ->
        Bigint.equal Bigint.one (Bigint.gcd (Rat.num a) (Rat.den a))
        || Rat.is_zero a);
    prop "den positive" 300 arb_rat (fun a -> Bigint.sign (Rat.den a) = 1);
    prop "floor <= x < floor+1" 300 arb_rat (fun a ->
        let f = Rat.of_bigint (Rat.floor a) in
        Rat.le f a && Rat.lt a (Rat.add f Rat.one));
    prop "compare consistent with sub sign" 300 (QCheck.pair arb_rat arb_rat)
      (fun (a, b) -> compare (Rat.compare a b) 0 = compare (Rat.sign (Rat.sub a b)) 0);
  ]

let suite =
  unit_tests @ tier_unit_tests @ property_tests @ tier_property_tests
