(* Serve-daemon hardening: the Guard admission ledger, the hardened
   Protocol reader, the Service poison-key breaker and deadline taint,
   and the Daemon loop's shedding/drain behaviour. *)

let t name f = Alcotest.test_case name `Quick f

let tiny_src =
  {|
filter A pop 0 push 1 { push(1.0); }
filter B pop 1 push 1 { push(pop() * 2.0); }
filter C pop 1 push 0 { let x = pop(); }
pipeline P { add A; add B; add C; }
|}

let tiny_graph () =
  Streamit.Flatten.flatten (Frontend.Parser.parse_program tiny_src)

let shed_reason = function
  | Cache.Guard.Shed s -> s.Cache.Guard.reason
  | Cache.Guard.Admitted _ -> Alcotest.fail "expected a shed"

let ticket = function
  | Cache.Guard.Admitted tk -> tk
  | Cache.Guard.Shed s -> Alcotest.fail ("unexpected shed: " ^ s.Cache.Guard.reason)

(* ---- Guard ----------------------------------------------------------- *)

let guard_tests =
  [
    t "count cap sheds beyond max_inflight + queue_cap" (fun () ->
        let g = Cache.Guard.create ~max_inflight:1 ~queue_cap:2 () in
        let t1 = ticket (Cache.Guard.try_admit g) in
        let t2 = ticket (Cache.Guard.try_admit g) in
        let t3 = ticket (Cache.Guard.try_admit g) in
        Alcotest.(check string) "fourth sheds" "admission queue full"
          (shed_reason (Cache.Guard.try_admit g));
        Cache.Guard.release g t1;
        let t4 = ticket (Cache.Guard.try_admit g) in
        List.iter (Cache.Guard.release g) [ t2; t3; t4 ];
        let o = Cache.Guard.occupancy g in
        Alcotest.(check int) "all released" 0 o.Cache.Guard.outstanding;
        Alcotest.(check int) "peak saw the full queue" 3
          o.Cache.Guard.peak_outstanding;
        Alcotest.(check int) "admitted counted" 4
          o.Cache.Guard.admitted_total;
        Alcotest.(check int) "shed counted" 1 o.Cache.Guard.shed_total);
    t "work ledger sheds before the count cap when occupancy is full"
      (fun () ->
        let g =
          Cache.Guard.create ~max_inflight:8 ~queue_cap:8 ~work_cap:100 ()
        in
        let t1 = ticket (Cache.Guard.try_admit ~work:60 g) in
        Alcotest.(check string) "overflow sheds" "work ledger full"
          (shed_reason (Cache.Guard.try_admit ~work:50 g));
        let t2 = ticket (Cache.Guard.try_admit ~work:40 g) in
        Cache.Guard.release g t1;
        Cache.Guard.release g t2;
        Alcotest.(check int) "ledger accumulated admitted work" 100
          (Cache.Guard.occupancy g).Cache.Guard.ledger_work_total);
    t "a request larger than the whole ledger sheds with retry 0" (fun () ->
        let g = Cache.Guard.create ~work_cap:100 () in
        match Cache.Guard.try_admit ~work:101 g with
        | Cache.Guard.Shed s ->
          Alcotest.(check int) "no point retrying" 0
            s.Cache.Guard.retry_after_ms;
          Alcotest.(check bool) "reason names the capacity" true
            (s.Cache.Guard.reason
            = "request work 101 exceeds ledger capacity 100")
        | Cache.Guard.Admitted _ -> Alcotest.fail "should have shed");
    t "retry-after hint grows with the backlog" (fun () ->
        let g = Cache.Guard.create ~max_inflight:1 ~queue_cap:1 () in
        let t1 = ticket (Cache.Guard.try_admit g) in
        let t2 = ticket (Cache.Guard.try_admit g) in
        (match Cache.Guard.try_admit g with
        | Cache.Guard.Shed s ->
          Alcotest.(check int) "25ms per outstanding request + 1" 75
            s.Cache.Guard.retry_after_ms
        | Cache.Guard.Admitted _ -> Alcotest.fail "should have shed");
        Cache.Guard.release g t1;
        Cache.Guard.release g t2);
    t "drain refuses new work and await_idle returns once released"
      (fun () ->
        let g = Cache.Guard.create () in
        let tk = ticket (Cache.Guard.try_admit g) in
        Cache.Guard.begin_drain g;
        Alcotest.(check string) "draining sheds" "draining"
          (shed_reason (Cache.Guard.try_admit g));
        let done_flag = Atomic.make false in
        let waiter =
          Domain.spawn (fun () ->
              Cache.Guard.await_idle g;
              Atomic.set done_flag true)
        in
        Unix.sleepf 0.02;
        Alcotest.(check bool) "await blocks while work in flight" false
          (Atomic.get done_flag);
        Cache.Guard.release g tk;
        Domain.join waiter;
        Alcotest.(check bool) "await returned after release" true
          (Atomic.get done_flag));
    t "the serve.admit inject site forces deterministic sheds" (fun () ->
        let g = Cache.Guard.create () in
        Resil.Inject.arm [ { Resil.Inject.site = "serve.admit"; at = 2 } ];
        let t1 = ticket (Cache.Guard.try_admit g) in
        Alcotest.(check string) "second admission fires the fault"
          "injected fault: serve.admit"
          (shed_reason (Cache.Guard.try_admit g));
        Resil.Inject.disarm ();
        Cache.Guard.release g t1);
  ]

(* ---- Protocol hardening ---------------------------------------------- *)

let parses s =
  match Cache.Protocol.parse s with
  | _ -> true
  | exception Cache.Protocol.Parse_error _ -> false

let protocol_tests =
  [
    t "duplicate object keys are rejected" (fun () ->
        Alcotest.(check bool) "dup rejected" false
          (parses {|{"op":"ping","op":"stats"}|});
        Alcotest.(check bool) "nested dup rejected" false
          (parses {|{"a":{"x":1,"x":2}}|}));
    t "huge numerics are rejected, not infinitized" (fun () ->
        Alcotest.(check bool) "overflowing exponent rejected" false
          (parses {|{"budget":1e999}|});
        Alcotest.(check bool) "normal floats fine" true
          (parses {|{"deadline":1.5}|}));
    t "invalid UTF-8 in strings is rejected" (fun () ->
        Alcotest.(check bool) "lone continuation byte" false
          (parses "{\"id\":\"\xffoops\"}");
        Alcotest.(check bool) "overlong encoding" false
          (parses "{\"id\":\"\xc0\xaf\"}");
        Alcotest.(check bool) "real multibyte accepted" true
          (parses "{\"id\":\"\xc3\xa9\"}"));
    t "wrong-typed request fields are errors, not ignored" (fun () ->
        match Cache.Protocol.parse_request {|{"op":"compile","budget":"lots"}|}
        with
        | Error m ->
          Alcotest.(check bool) "names the field" true
            (String.length m > 0 && String.sub m 0 6 = "budget")
        | Ok _ -> Alcotest.fail "string budget should not parse");
    t "bounded line reader truncates without losing sync" (fun () ->
        let p = Filename.temp_file "guard_lines" ".txt" in
        Out_channel.with_open_bin p (fun oc ->
            Out_channel.output_string oc
              ("short\n" ^ String.make 1000 'x' ^ "\nafter\n"));
        let ic = open_in_bin p in
        let r1 = Cache.Protocol.read_bounded_line ~max_bytes:64 ic in
        let r2 = Cache.Protocol.read_bounded_line ~max_bytes:64 ic in
        let r3 = Cache.Protocol.read_bounded_line ~max_bytes:64 ic in
        let r4 = Cache.Protocol.read_bounded_line ~max_bytes:64 ic in
        close_in ic;
        Sys.remove p;
        Alcotest.(check bool) "first line read" true
          (r1 = Cache.Protocol.Line "short");
        Alcotest.(check bool) "huge line truncated" true
          (r2 = Cache.Protocol.Truncated);
        Alcotest.(check bool) "stream stays line-synchronized" true
          (r3 = Cache.Protocol.Line "after");
        Alcotest.(check bool) "then EOF" true (r4 = Cache.Protocol.Eof));
  ]

(* ---- Service: breaker and deadline taint ----------------------------- *)

let service_tests =
  [
    t "a crashing compile is contained and eventually poisons its key"
      (fun () ->
        let svc = Cache.Service.create ~breaker_threshold:2 () in
        let g = tiny_graph () in
        let o = Cache.Key.default_options in
        let crash_once at =
          Resil.Inject.arm [ { Resil.Inject.site = "serve.compile"; at } ];
          let r = Cache.Service.get svc g o in
          Resil.Inject.disarm ();
          match r with
          | Error m ->
            Alcotest.(check bool) "crash became a structured error" true
              (String.length m >= 15
              && String.sub m 0 15 = "compile crashed")
          | Ok _ -> Alcotest.fail "injected crash should not succeed"
        in
        crash_once 1;
        Alcotest.(check bool) "one crash does not poison" false
          (Cache.Service.poisoned svc (Cache.Key.digest g o));
        crash_once 1;
        Alcotest.(check bool) "threshold reached, breaker open" true
          (Cache.Service.poisoned svc (Cache.Key.digest g o));
        Alcotest.(check int) "one key poisoned" 1
          (Cache.Service.breaker_open_count svc);
        (match Cache.Service.get svc g o with
        | Error m ->
          Alcotest.(check bool) "refused without compiling" true
            (String.sub m 0 8 = "poisoned")
        | Ok _ -> Alcotest.fail "poisoned key must be refused");
        (* the breaker is per-key: other graphs still compile *)
        let o2 = { o with Cache.Key.coarsening = 2 } in
        match Cache.Service.get svc g o2 with
        | Ok _ -> ()
        | Error m -> Alcotest.fail ("other keys must still work: " ^ m));
    t "a deadline-shaped result is returned but never cached" (fun () ->
        let svc = Cache.Service.create () in
        let g = tiny_graph () in
        let o = Cache.Key.default_options in
        (match Cache.Service.get ~deadline:60.0 svc g o with
        | Ok (_, outcome) ->
          Alcotest.(check string) "compiled" "miss"
            (Cache.Service.outcome_name outcome)
        | Error m -> Alcotest.fail m);
        Alcotest.(check bool) "nothing stored under the key" true
          (Cache.Store.find
             (Cache.Service.store svc)
             (Cache.Key.digest g o)
          = None);
        (* an undeadlined compile of the same key is a genuine miss *)
        match Cache.Service.get svc g o with
        | Ok (_, outcome) ->
          Alcotest.(check string) "recompiled, not served stale" "miss"
            (Cache.Service.outcome_name outcome)
        | Error m -> Alcotest.fail m);
  ]

(* ---- Daemon ---------------------------------------------------------- *)

let compile_req id =
  Printf.sprintf
    {|{"id":%d,"op":"compile","src":"filter A pop 0 push 1 { push(1.0); } filter B pop 1 push 0 { let x = pop(); } pipeline P { add A; add B; }"}|}
    id

let member_str name doc =
  match Obs.Report.member name doc with
  | Some (Obs.Report.Str s) -> Some s
  | _ -> None

let daemon_tests =
  [
    t "an overloaded batch sheds deterministically, tail first" (fun () ->
        let run () =
          let svc = Cache.Service.create () in
          let guard = Cache.Guard.create ~max_inflight:1 ~queue_cap:1 () in
          let d = Cache.Daemon.create ~guard svc in
          let line =
            "[" ^ String.concat "," (List.init 5 (fun i -> compile_req i)) ^ "]"
          in
          match Cache.Daemon.handle_line d line with
          | `Reply s -> s
          | `Shutdown _ -> Alcotest.fail "unexpected shutdown"
        in
        let statuses reply =
          match Cache.Protocol.parse reply with
          | Obs.Report.Arr docs ->
            List.map
              (fun doc ->
                match member_str "error" doc with
                | Some e -> String.sub e 0 10
                | None -> "ok")
              docs
          | _ -> Alcotest.fail "batch reply must be an array"
        in
        let first = statuses (run ()) in
        Alcotest.(check (list string)) "capacity 2: last 3 shed"
          [ "ok"; "ok"; "overloaded"; "overloaded"; "overloaded" ] first;
        Alcotest.(check (list string)) "identical burst, identical sheds"
          first
          (statuses (run ())));
    t "shed responses carry a retry_after_ms hint" (fun () ->
        let svc = Cache.Service.create () in
        let guard = Cache.Guard.create ~max_inflight:1 ~queue_cap:0 () in
        let d = Cache.Daemon.create ~guard svc in
        let line =
          "[" ^ compile_req 1 ^ "," ^ compile_req 2 ^ "]"
        in
        match Cache.Daemon.handle_line d line with
        | `Shutdown _ -> Alcotest.fail "unexpected shutdown"
        | `Reply s -> (
          match Cache.Protocol.parse s with
          | Obs.Report.Arr [ _; shed ] ->
            (match Obs.Report.member "retry_after_ms" shed with
            | Some (Obs.Report.Int ms) ->
              Alcotest.(check int) "one outstanding -> 50ms" 50 ms
            | _ -> Alcotest.fail "shed response lacks retry_after_ms")
          | _ -> Alcotest.fail "expected a two-element reply"));
    t "shutdown drains and reports the final counters" (fun () ->
        let svc = Cache.Service.create () in
        let d = Cache.Daemon.create svc in
        ignore (Cache.Daemon.handle_line d (compile_req 1));
        match Cache.Daemon.handle_line d {|{"id":2,"op":"shutdown"}|} with
        | `Reply _ -> Alcotest.fail "shutdown must end the session"
        | `Shutdown s -> (
          let doc = Cache.Protocol.parse s in
          (match Obs.Report.member "drained" doc with
          | Some (Obs.Report.Bool true) -> ()
          | _ -> Alcotest.fail "shutdown response lacks drained:true");
          (match Obs.Report.member "admitted" doc with
          | Some (Obs.Report.Int 1) -> ()
          | _ -> Alcotest.fail "drain report misses the admitted count");
          Alcotest.(check bool) "guard now refuses work" true
            (match Cache.Daemon.handle_line d (compile_req 3) with
            | `Reply r -> (
              match member_str "error" (Cache.Protocol.parse r) with
              | Some e -> String.length e >= 10 && String.sub e 0 10 = "overloaded"
              | None -> false)
            | `Shutdown _ -> false)));
    t "ping reports version, cache health and ledger occupancy" (fun () ->
        let svc = Cache.Service.create () in
        let d = Cache.Daemon.create svc in
        match Cache.Daemon.handle_line d {|{"id":7,"op":"ping"}|} with
        | `Shutdown _ -> Alcotest.fail "ping must not shut down"
        | `Reply s ->
          let doc = Cache.Protocol.parse s in
          Alcotest.(check (option string)) "version"
            (Some Cache.Key.compiler_version)
            (member_str "version" doc);
          Alcotest.(check bool) "has cache health" true
            (Obs.Report.member "cache" doc <> None);
          Alcotest.(check bool) "has guard occupancy" true
            (Obs.Report.member "guard" doc <> None));
  ]

let suite = guard_tests @ protocol_tests @ service_tests @ daemon_tests
