(* Golden-fixture generator: compile one registry benchmark and write
   its kernel for all four codegen targets.  Every kernel passes the
   structural linter before it is written, so a fixture can never pin a
   kernel the linter would reject.

   Used by the per-benchmark dune rules in test/dune; after an
   intentional schedule or printer change, regenerate everything with

     dune build @codegen; dune promote

   (or target one backend: @codegen-wgsl etc.). *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  match Sys.argv with
  | [| _; bench; out_cu; out_wgsl; out_cl; out_metal |] -> (
    let e =
      match Benchmarks.Registry.find bench with
      | Some e -> e
      | None -> die "gen_codegen: unknown benchmark %s" bench
    in
    let g = Streamit.Flatten.flatten (e.Benchmarks.Registry.stream ()) in
    match Swp_core.Compile.compile g with
    | Error m -> die "gen_codegen: %s: compile: %s" bench m
    | Ok c ->
      let p = Kir.Lower.lower c in
      let write path target =
        match Kir.Backend.emit_checked target p with
        | Error m -> die "gen_codegen: %s: %s" bench m
        | Ok src ->
          let oc = open_out_bin path in
          output_string oc src;
          close_out oc
      in
      write out_cu Kir.Ir.Cuda;
      write out_wgsl Kir.Ir.Wgsl;
      write out_cl Kir.Ir.Opencl;
      write out_metal Kir.Ir.Metal)
  | _ ->
    die
      "usage: gen_codegen <benchmark> <out.cu> <out.wgsl> <out.cl> \
       <out.metal>"
