(* Unit tests for the domain work pool: deterministic join order,
   exception propagation from workers, nested-use rejection, the
   serial fallback, and a stress run with far more tasks than
   domains. *)

let t name f = Alcotest.test_case name `Quick f

(* Scramble execution timing so completion order differs from
   submission order: elements sleep pseudo-random sub-millisecond
   amounts before answering. *)
let jittered x =
  Unix.sleepf (float_of_int ((x * 37) mod 7) /. 4000.0);
  x * x

let pool_tests =
  [
    t "map preserves submission order under jitter" (fun () ->
        Par.Pool.with_pool ~domains:4 (fun p ->
            let xs = List.init 64 (fun i -> i) in
            Alcotest.(check (list int))
              "same as serial map" (List.map jittered xs)
              (Par.Pool.map p jittered xs)));
    t "empty and singleton inputs" (fun () ->
        Par.Pool.with_pool ~domains:4 (fun p ->
            Alcotest.(check (list int)) "empty" [] (Par.Pool.map p succ []);
            Alcotest.(check (list int)) "singleton" [ 2 ] (Par.Pool.map p succ [ 1 ])));
    t "earliest exception wins and carries its message" (fun () ->
        Par.Pool.with_pool ~domains:4 (fun p ->
            let f x =
              if x = 7 then failwith "boom7"
              else if x = 42 then failwith "boom42"
              else x
            in
            match Par.Pool.map p f (List.init 64 (fun i -> i)) with
            | _ -> Alcotest.fail "expected an exception"
            | exception Failure m ->
              Alcotest.(check string) "first failing element" "boom7" m));
    t "worker exception does not poison the pool" (fun () ->
        Par.Pool.with_pool ~domains:4 (fun p ->
            (try ignore (Par.Pool.map p (fun _ -> failwith "x") [ 1; 2; 3 ])
             with Failure _ -> ());
            Alcotest.(check (list int))
              "pool still maps" [ 2; 3; 4 ]
              (Par.Pool.map p succ [ 1; 2; 3 ])));
    t "nested use is rejected" (fun () ->
        Par.Pool.with_pool ~domains:4 (fun p ->
            match
              Par.Pool.map p
                (fun _ -> Par.Pool.map p succ [ 1; 2; 3 ])
                [ 1; 2; 3; 4 ]
            with
            | _ -> Alcotest.fail "expected Invalid_argument"
            | exception Invalid_argument _ -> ()));
    t "nested use is rejected across pools" (fun () ->
        Par.Pool.with_pool ~domains:2 (fun outer ->
            Par.Pool.with_pool ~domains:2 (fun inner ->
                match
                  Par.Pool.map outer (fun x -> Par.Pool.map inner succ [ x ]) [ 1; 2 ]
                with
                | _ -> Alcotest.fail "expected Invalid_argument"
                | exception Invalid_argument _ -> ())));
    t "domains=1 runs serially on the caller" (fun () ->
        Par.Pool.with_pool ~domains:1 (fun p ->
            let self = Domain.self () in
            let ran_on = Par.Pool.map p (fun _ -> Domain.self ()) [ 1; 2; 3 ] in
            List.iter
              (fun d -> Alcotest.(check bool) "caller domain" true (d = self))
              ran_on;
            Alcotest.(check (list int))
              "results" [ 1; 4; 9 ]
              (Par.Pool.map p (fun x -> x * x) [ 1; 2; 3 ])));
    t "stress: many more tasks than domains" (fun () ->
        Par.Pool.with_pool ~domains:4 (fun p ->
            let n = 1000 in
            let xs = List.init n (fun i -> i) in
            let expected = List.map (fun x -> (2 * x) + 1) xs in
            Alcotest.(check (list int))
              "all results, in order" expected
              (Par.Pool.map p (fun x -> (2 * x) + 1) xs)));
    t "map_reduce folds in submission order" (fun () ->
        Par.Pool.with_pool ~domains:4 (fun p ->
            (* non-commutative reduction: string concatenation *)
            let xs = List.init 32 (fun i -> i) in
            let serial =
              List.fold_left
                (fun acc x -> acc ^ string_of_int x ^ ";")
                "" (List.map jittered xs)
            in
            let parallel =
              Par.Pool.map_reduce p ~map:jittered
                ~reduce:(fun acc x -> acc ^ string_of_int x ^ ";")
                ~init:"" xs
            in
            Alcotest.(check string) "same fold" serial parallel));
    t "shutdown rejects further maps" (fun () ->
        let p = Par.Pool.create ~domains:2 () in
        Par.Pool.shutdown p;
        Par.Pool.shutdown p (* idempotent *);
        match Par.Pool.map p succ [ 1 ] with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
  ]

let with_jobs n f =
  Par.Pool.set_jobs n;
  Fun.protect f ~finally:(fun () -> Par.Pool.set_jobs 1)

let global_tests =
  [
    t "map_auto is serial at jobs=1" (fun () ->
        with_jobs 1 (fun () ->
            Alcotest.(check int) "parallelism" 1 (Par.Pool.parallelism ());
            let self = Domain.self () in
            List.iter
              (fun d -> Alcotest.(check bool) "caller domain" true (d = self))
              (Par.Pool.map_auto (fun _ -> Domain.self ()) [ 1; 2; 3 ])));
    t "map_auto parallelizes at jobs=4 and matches serial" (fun () ->
        with_jobs 4 (fun () ->
            Alcotest.(check int) "parallelism" 4 (Par.Pool.parallelism ());
            let xs = List.init 64 (fun i -> i) in
            Alcotest.(check (list int))
              "same as serial" (List.map jittered xs)
              (Par.Pool.map_auto jittered xs)));
    t "map_auto degrades to serial when nested" (fun () ->
        with_jobs 4 (fun () ->
            let widths =
              Par.Pool.map_auto
                (fun _ ->
                  (* inside a task: nested fan-out must serialize, not
                     raise and not deadlock *)
                  ( Par.Pool.parallelism (),
                    Par.Pool.map_auto succ [ 1; 2; 3 ] ))
                [ 1; 2; 3; 4; 5; 6; 7; 8 ]
            in
            List.iter
              (fun (w, inner) ->
                Alcotest.(check int) "inner width" 1 w;
                Alcotest.(check (list int)) "inner results" [ 2; 3; 4 ] inner)
              widths));
    t "set_jobs resizes the global pool" (fun () ->
        with_jobs 2 (fun () ->
            ignore (Par.Pool.map_auto succ [ 1; 2; 3 ]);
            Par.Pool.set_jobs 3;
            Alcotest.(check int) "new width" 3 (Par.Pool.jobs ());
            Alcotest.(check (list int))
              "still correct" [ 2; 3; 4 ]
              (Par.Pool.map_auto succ [ 1; 2; 3 ])));
  ]

let suite = pool_tests @ global_tests
