(* The content-addressed schedule cache behind `streamit_gpu serve`:
   key canonicalization and sensitivity, the byte-identity guarantee
   (a hit returns exactly the bytes a cold compile would produce),
   single-flight coalescing, the two-tier store, and the incremental
   warm-start path. *)

let t name f = Alcotest.test_case name `Quick f

let rm_rf dir =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> go (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then go dir

let flatten_src src =
  Streamit.Flatten.flatten (Frontend.Parser.parse_program src)

(* A tiny three-filter pipeline, plus variants that differ only in
   naming (same key expected) or only in one filter's body (same
   skeleton, different key). *)
let base_src =
  {|
filter A pop 0 push 1 { push(1.0); }
filter B pop 1 push 1 { push(pop() * 2.0); }
filter C pop 1 push 0 { let x = pop(); }
pipeline P { add A; add B; add C; }
|}

let renamed_src =
  {|
filter Z pop 0 push 1 { push(1.0); }
filter Y pop 1 push 1 { push(pop() * 2.0); }
filter W pop 1 push 0 { let q = pop(); }
pipeline Q { add Z; add Y; add W; }
|}

let body_changed_src =
  {|
filter A pop 0 push 1 { push(1.0); }
filter B pop 1 push 1 { push(pop() * 3.0); }
filter C pop 1 push 0 { let x = pop(); }
pipeline P { add A; add B; add C; }
|}

let opts = Cache.Key.default_options

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.fail m

let equal_entry (a : Cache.Store.entry) (b : Cache.Store.entry) = a = b

let check_entry msg a b =
  Alcotest.(check bool) (msg ^ ": byte-identical entries") true
    (equal_entry a b)

(* ---- Key ------------------------------------------------------------- *)

let key_tests =
  [
    t "digest is naming-irrelevant" (fun () ->
        let g = flatten_src base_src and r = flatten_src renamed_src in
        Alcotest.(check string) "renamed graph, same key"
          (Cache.Key.digest g opts) (Cache.Key.digest r opts);
        Alcotest.(check string) "same skeleton too"
          (Cache.Key.skeleton_digest g opts)
          (Cache.Key.skeleton_digest r opts));
    t "digest agrees with the canonical form" (fun () ->
        let g = flatten_src base_src in
        Alcotest.(check string) "digest(canonical g) = digest(g)"
          (Cache.Key.digest g opts)
          (Cache.Key.digest (Cache.Key.canonical_graph g) opts);
        Alcotest.(check string) "serialize too"
          (Cache.Key.serialize g)
          (Cache.Key.serialize (Cache.Key.canonical_graph g)));
    t "digest is body-sensitive, skeleton is not" (fun () ->
        let g = flatten_src base_src and m = flatten_src body_changed_src in
        Alcotest.(check bool) "body change, new key" true
          (Cache.Key.digest g opts <> Cache.Key.digest m opts);
        Alcotest.(check string) "body change, same skeleton"
          (Cache.Key.skeleton_digest g opts)
          (Cache.Key.skeleton_digest m opts));
    t "digest is option-sensitive" (fun () ->
        let g = flatten_src base_src in
        let base = Cache.Key.digest g opts in
        let variants =
          [
            ("coarsening", { opts with Cache.Key.coarsening = 2 });
            ("num_sms", { opts with Cache.Key.num_sms = Some 4 });
            ("budget", { opts with Cache.Key.budget = Some 10 });
            ( "scheme",
              { opts with Cache.Key.scheme = Swp_core.Compile.Swp_non_coalesced }
            );
            ("portfolio", { opts with Cache.Key.portfolio = Some false });
            ("lns_rounds", { opts with Cache.Key.lns_rounds = Some 0 });
            ("target", { opts with Cache.Key.target = Kir.Ir.Wgsl });
          ]
        in
        List.iter
          (fun (what, o) ->
            Alcotest.(check bool) (what ^ " change, new key") true
              (Cache.Key.digest g o <> base))
          variants);
    t "digest is float-bit-sensitive" (fun () ->
        (* 2.0 vs the next float up: far below %g precision, still a
           different key *)
        let v = {|
filter A pop 0 push 1 { push(1.0); }
filter B pop 1 push 1 { push(pop() * 2.0000000000000004); }
filter C pop 1 push 0 { let x = pop(); }
pipeline P { add A; add B; add C; }
|}
        in
        let g = flatten_src base_src and m = flatten_src v in
        Alcotest.(check bool) "ulp change, new key" true
          (Cache.Key.digest g opts <> Cache.Key.digest m opts));
  ]

(* ---- Store ----------------------------------------------------------- *)

let entry k =
  {
    Cache.Store.key = k;
    ii = 42;
    quality = "exact";
    signature = "sig-" ^ k;
    schedule = "sched\nlines";
    layout = "layout";
    kernel = "__global__ void k() {}\n";
    report = "{\"ii\":42}";
  }

let store_tests =
  [
    t "serialize/deserialize round-trips" (fun () ->
        let e = entry "k1" in
        check_entry "round-trip" e
          (Cache.Store.deserialize (Cache.Store.serialize e)));
    t "deserialize rejects garbage" (fun () ->
        List.iter
          (fun s ->
            try
              ignore (Cache.Store.deserialize s);
              Alcotest.fail "expected Corrupt"
            with Cache.Store.Corrupt _ -> ())
          [
            "";
            "garbage";
            "streamit-cache-entry v2\n9999999 x";
            (* v1 entries (pre-target format) must read as corrupt, not
               as entries with a misnamed kernel section *)
            "streamit-cache-entry v1\nkey k\nii 1\nquality q\nsignature s\n";
          ]);
    t "in-memory tier hits and LRU-evicts" (fun () ->
        let s = Cache.Store.create ~capacity:2 () in
        Cache.Store.put s (entry "a");
        Cache.Store.put s (entry "b");
        Alcotest.(check bool) "a present" true
          (Cache.Store.find s "a" <> None);
        (* touch a so b is the least recently used *)
        Cache.Store.put s (entry "c");
        Alcotest.(check int) "capacity held" 2 (Cache.Store.mem_size s);
        Alcotest.(check bool) "b evicted" true (Cache.Store.find s "b" = None);
        Alcotest.(check bool) "a survives" true
          (Cache.Store.find s "a" <> None);
        Alcotest.(check bool) "c present" true
          (Cache.Store.find s "c" <> None));
    t "disk tier persists across store instances" (fun () ->
        let dir = "cache_store_disk_test" in
        let s1 = Cache.Store.create ~dir () in
        Cache.Store.put s1 (entry "k-disk");
        let s2 = Cache.Store.create ~dir () in
        (match Cache.Store.find s2 "k-disk" with
        | Some e -> check_entry "disk round-trip" (entry "k-disk") e
        | None -> Alcotest.fail "disk entry not found");
        (* an entry whose stored key disagrees with its filename is a
           miss, not a crash — and the suspect file is quarantined, not
           deleted *)
        let oc = open_out (Filename.concat dir "deadbeef.entry") in
        output_string oc (Cache.Store.serialize (entry "not-deadbeef"));
        close_out oc;
        Alcotest.(check bool) "key-mismatched file is a miss" true
          (Cache.Store.find s2 "deadbeef" = None);
        Alcotest.(check bool) "key-mismatched file was quarantined" true
          (Sys.file_exists
             (Filename.concat (Cache.Store.quarantine_dir dir)
                "deadbeef.entry"));
        rm_rf dir);
    t "startup scrub quarantines torn writes, never deletes" (fun () ->
        let dir = "cache_store_scrub_test" in
        rm_rf dir;
        let s1 = Cache.Store.create ~dir () in
        Cache.Store.put s1 (entry "intact");
        Cache.Store.put s1 (entry "torn");
        (* simulate a torn write: truncate the published entry *)
        let p = Filename.concat dir "torn.entry" in
        let full = In_channel.with_open_bin p In_channel.input_all in
        Out_channel.with_open_bin p (fun oc ->
            Out_channel.output_string oc
              (String.sub full 0 (String.length full / 2)));
        (* and writer debris from a crash before the rename *)
        Out_channel.with_open_bin (Filename.concat dir "junk.entry.tmp")
          (fun oc -> Out_channel.output_string oc "half a payload");
        let s2 = Cache.Store.create ~dir () in
        let scrub = Cache.Store.scrub_stats s2 in
        Alcotest.(check int) "scrub scanned all files" 3
          scrub.Cache.Store.scanned;
        Alcotest.(check int) "scrub quarantined torn + debris" 2
          scrub.Cache.Store.quarantined;
        Alcotest.(check bool) "intact entry survives" true
          (Cache.Store.find s2 "intact" <> None);
        Alcotest.(check bool) "torn entry is a miss" true
          (Cache.Store.find s2 "torn" = None);
        let q = Cache.Store.quarantine_dir dir in
        Alcotest.(check bool) "torn bytes preserved in quarantine" true
          (Sys.file_exists (Filename.concat q "torn.entry"));
        Alcotest.(check bool) "debris preserved in quarantine" true
          (Sys.file_exists (Filename.concat q "junk.entry.tmp"));
        rm_rf dir);
    t "injected disk faults degrade to memory-only, not failure" (fun () ->
        let dir = "cache_store_degrade_test" in
        rm_rf dir;
        let s = Cache.Store.create ~dir () in
        Resil.Inject.arm [ { Resil.Inject.site = "store.write"; at = 1 } ];
        Cache.Store.put s (entry "k1");
        Resil.Inject.disarm ();
        Alcotest.(check bool) "store degraded after write fault" true
          (Cache.Store.disk_degraded s);
        Alcotest.(check bool) "entry still served from memory" true
          (Cache.Store.find s "k1" <> None);
        Alcotest.(check bool) "nothing published to disk" true
          (not (Sys.file_exists (Filename.concat dir "k1.entry")));
        (* later writes stay memory-only instead of retrying the disk *)
        Cache.Store.put s (entry "k2");
        Alcotest.(check bool) "degradation is sticky" true
          (not (Sys.file_exists (Filename.concat dir "k2.entry")));
        rm_rf dir);
  ]

(* ---- Service --------------------------------------------------------- *)

let registry_graphs () =
  List.map
    (fun (e : Benchmarks.Registry.entry) ->
      (e.name, Streamit.Flatten.flatten (e.stream ())))
    Benchmarks.Registry.all

let service_tests =
  [
    t "hit is byte-identical to cold compile (all 8 benchmarks)" (fun () ->
        List.iter
          (fun (name, g) ->
            (* cold: fresh service, fresh profile memo *)
            let svc1 = Cache.Service.create () in
            Swp_core.Profile.clear_cache ();
            let e1, o1 = ok (Cache.Service.get svc1 g opts) in
            Alcotest.(check string) (name ^ ": first is a miss") "miss"
              (Cache.Service.outcome_name o1);
            (* hit on the same service *)
            let e2, o2 = ok (Cache.Service.get svc1 g opts) in
            Alcotest.(check string) (name ^ ": second is a hit") "hit"
              (Cache.Service.outcome_name o2);
            check_entry (name ^ ": hit vs cold") e1 e2;
            (* a second cold compile — now under a warm profile memo —
               must still produce the same bytes *)
            let svc2 = Cache.Service.create () in
            let e3, _ = ok (Cache.Service.get svc2 g opts) in
            check_entry (name ^ ": warm-memo cold vs cold") e1 e3)
          (registry_graphs ()));
    t "wgsl and cuda requests for one graph never alias" (fun () ->
        let g = flatten_src base_src in
        let wgsl_opts = { opts with Cache.Key.target = Kir.Ir.Wgsl } in
        Alcotest.(check bool) "distinct keys" true
          (Cache.Key.digest g opts <> Cache.Key.digest g wgsl_opts);
        let svc = Cache.Service.create () in
        let e_cuda, o1 = ok (Cache.Service.get svc g opts) in
        let e_wgsl, o2 = ok (Cache.Service.get svc g wgsl_opts) in
        (* the second target misses — it cannot be served the first
           target's entry *)
        Alcotest.(check string) "cuda misses" "miss"
          (Cache.Service.outcome_name o1);
        Alcotest.(check string) "wgsl misses too" "miss"
          (Cache.Service.outcome_name o2);
        Alcotest.(check bool) "distinct entries" true
          (e_cuda.Cache.Store.key <> e_wgsl.Cache.Store.key);
        Alcotest.(check bool) "distinct kernel bytes" true
          (e_cuda.Cache.Store.kernel <> e_wgsl.Cache.Store.kernel);
        (* and each target's repeat request hits its own entry *)
        let e_cuda2, o3 = ok (Cache.Service.get svc g opts) in
        let e_wgsl2, o4 = ok (Cache.Service.get svc g wgsl_opts) in
        Alcotest.(check string) "cuda hit" "hit"
          (Cache.Service.outcome_name o3);
        Alcotest.(check string) "wgsl hit" "hit"
          (Cache.Service.outcome_name o4);
        check_entry "cuda stable" e_cuda e_cuda2;
        check_entry "wgsl stable" e_wgsl e_wgsl2);
    t "naming-only edit hits with identical bytes" (fun () ->
        let svc = Cache.Service.create () in
        let e1, _ = ok (Cache.Service.get svc (flatten_src base_src) opts) in
        let e2, o2 =
          ok (Cache.Service.get svc (flatten_src renamed_src) opts)
        in
        Alcotest.(check string) "renamed graph hits" "hit"
          (Cache.Service.outcome_name o2);
        check_entry "renamed" e1 e2);
    t "one-filter body change recompiles incrementally" (fun () ->
        let svc = Cache.Service.create () in
        let _ = ok (Cache.Service.get svc (flatten_src base_src) opts) in
        let e_inc, o =
          ok (Cache.Service.get svc (flatten_src body_changed_src) opts)
        in
        Alcotest.(check string) "incremental outcome" "incremental"
          (Cache.Service.outcome_name o);
        (* the warm-started result must equal a cold compile of the
           changed graph, byte for byte *)
        let svc2 = Cache.Service.create () in
        Swp_core.Profile.clear_cache ();
        let e_cold, _ =
          ok (Cache.Service.get svc2 (flatten_src body_changed_src) opts)
        in
        Alcotest.(check bool) "non-degraded (stored path)" true
          (e_inc.Cache.Store.quality <> "degraded");
        check_entry "incremental vs cold" e_inc e_cold);
    t "warm=false disables the incremental path" (fun () ->
        let svc = Cache.Service.create ~warm:false () in
        let _ = ok (Cache.Service.get svc (flatten_src base_src) opts) in
        let _, o =
          ok (Cache.Service.get svc (flatten_src body_changed_src) opts)
        in
        Alcotest.(check string) "plain miss" "miss"
          (Cache.Service.outcome_name o));
    t "concurrent same-key requests compile exactly once" (fun () ->
        let g = flatten_src base_src in
        let svc = Cache.Service.create () in
        Par.Pool.set_jobs 4;
        let results =
          Fun.protect
            ~finally:(fun () -> Par.Pool.set_jobs 1)
            (fun () ->
              Cache.Service.get_many svc (List.init 8 (fun _ -> (g, opts))))
        in
        Alcotest.(check int) "one compile" 1 (Cache.Service.compiles svc);
        let entries =
          List.map (fun r -> fst (ok r)) results
        in
        let first = List.hd entries in
        List.iteri
          (fun i e -> check_entry (Printf.sprintf "request %d" i) first e)
          entries);
  ]

(* ---- Protocol -------------------------------------------------------- *)

let protocol_tests =
  [
    t "request parsing: defaults and validation" (fun () ->
        (match
           Cache.Protocol.parse_request
             {|{"op":"compile","program":"Bitonic"}|}
         with
        | Ok r ->
          Alcotest.(check bool) "compile op" true
            (r.Cache.Protocol.op = Cache.Protocol.Compile);
          Alcotest.(check (option string)) "program" (Some "Bitonic")
            r.Cache.Protocol.program;
          Alcotest.(check int) "default coarsening" 1
            r.Cache.Protocol.coarsening;
          Alcotest.(check bool) "warm by default" true r.Cache.Protocol.warm
        | Error m -> Alcotest.fail m);
        List.iter
          (fun bad ->
            match Cache.Protocol.parse_request bad with
            | Ok _ -> Alcotest.fail ("accepted: " ^ bad)
            | Error _ -> ())
          [
            "";
            "{";
            "[1,2]";
            {|{"op":"frobnicate"}|};
            {|{"op":"compile","scheme":"SWP2"}|};
            {|{"op":"compile","program":"Bitonic","artifacts":["cuda","nope"]}|};
            {|{"op":"compile","program":"Bitonic","artifacts":"cuda"}|};
          ]);
    t "JSON reader round-trips through the report printer" (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check string) s s
              (Obs.Report.to_string (Cache.Protocol.parse s)))
          [
            {|{"a":[1,2.5,"x\n",true,null],"b":{"c":-3}}|};
            {|[]|};
            {|"A\\"|};
            {|-0.5|};
          ]);
  ]

let suite = key_tests @ store_tests @ service_tests @ protocol_tests
