(* Gate for the malformed-request corpus: the daemon's replies arrive
   on stdin, and every single one must be exactly one well-formed JSON
   object with status "error" — no crashes, no dropped lines, no
   half-written garbage, no accidental successes.  The expected reply
   count (the corpus line count) is argv 1. *)

let () =
  let expected = int_of_string Sys.argv.(1) in
  let seen = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "malformed_check: %s\n" m;
        exit 1)
      fmt
  in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then begin
         incr seen;
         match Cache.Protocol.parse line with
         | exception Cache.Protocol.Parse_error m ->
           fail "reply %d is not valid JSON (%s): %s" !seen m line
         | Obs.Report.Obj fields -> (
           match List.assoc_opt "status" fields with
           | Some (Obs.Report.Str "error") ->
             if not (List.mem_assoc "error" fields) then
               fail "reply %d has no error message: %s" !seen line
           | Some (Obs.Report.Str s) ->
             fail "reply %d has status %S, want \"error\": %s" !seen s line
           | _ -> fail "reply %d has no status: %s" !seen line)
         | _ -> fail "reply %d is not a JSON object: %s" !seen line
       end
     done
   with End_of_file -> ());
  if !seen <> expected then
    fail "expected %d error replies, got %d" expected !seen;
  Printf.printf "malformed_check: %d/%d malformed lines each drew one \
                 well-formed error\n"
    !seen expected
