open Numeric

let check_bi = Alcotest.testable Bigint.pp Bigint.equal

let t name f = Alcotest.test_case name `Quick f

let big_int_gen =
  (* arbitrary-precision values built from decimal strings *)
  QCheck.Gen.(
    map2
      (fun neg digits ->
        let s = String.concat "" (List.map string_of_int digits) in
        let s = if s = "" then "0" else s in
        Bigint.of_string (if neg then "-" ^ s else s))
      bool
      (list_size (int_range 1 40) (int_range 0 9)))

let arb_big = QCheck.make ~print:Bigint.to_string big_int_gen

let unit_tests =
  [
    t "zero/one constants" (fun () ->
        Alcotest.check check_bi "0" Bigint.zero (Bigint.of_int 0);
        Alcotest.check check_bi "1" Bigint.one (Bigint.of_int 1);
        Alcotest.check check_bi "-1" Bigint.minus_one (Bigint.of_int (-1)));
    t "of_int/to_int roundtrip extremes" (fun () ->
        List.iter
          (fun n -> Alcotest.(check int) "rt" n (Bigint.to_int (Bigint.of_int n)))
          [ 0; 1; -1; 42; -12345; max_int; min_int; max_int - 1; min_int + 1 ]);
    t "of_string/to_string" (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check string) s s (Bigint.to_string (Bigint.of_string s)))
          [
            "0"; "1"; "-1"; "123456789012345678901234567890";
            "-999999999999999999999999999";
          ]);
    t "of_string normalizes leading zeros" (fun () ->
        Alcotest.(check string) "zeros" "42" (Bigint.to_string (Bigint.of_string "0042"));
        Alcotest.(check string) "zero" "0" (Bigint.to_string (Bigint.of_string "000")));
    t "of_string rejects garbage" (fun () ->
        List.iter
          (fun s ->
            Alcotest.check_raises s (Invalid_argument
              (match s with
               | "" -> "Bigint.of_string: empty string"
               | "+" | "-" -> "Bigint.of_string: no digits"
               | _ -> "Bigint.of_string: bad digit"))
              (fun () -> ignore (Bigint.of_string s)))
          [ ""; "+"; "-"; "12a3"; "1 2" ]);
    t "addition carries across limbs" (fun () ->
        let a = Bigint.of_string "1073741823" (* 2^30 - 1 *) in
        Alcotest.check check_bi "carry" (Bigint.of_string "1073741824")
          (Bigint.add a Bigint.one));
    t "multiplication known product" (fun () ->
        let a = Bigint.of_string "123456789" in
        let b = Bigint.of_string "987654321" in
        Alcotest.check check_bi "prod"
          (Bigint.of_string "121932631112635269")
          (Bigint.mul a b));
    t "division by zero raises" (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (Bigint.div Bigint.one Bigint.zero)));
    t "truncated division signs" (fun () ->
        let q, r = Bigint.divmod (Bigint.of_int (-7)) (Bigint.of_int 2) in
        Alcotest.(check int) "q" (-3) (Bigint.to_int q);
        Alcotest.(check int) "r" (-1) (Bigint.to_int r));
    t "euclidean division signs" (fun () ->
        Alcotest.(check int) "ediv" (-4)
          (Bigint.to_int (Bigint.ediv (Bigint.of_int (-7)) (Bigint.of_int 2)));
        Alcotest.(check int) "emod" 1
          (Bigint.to_int (Bigint.emod (Bigint.of_int (-7)) (Bigint.of_int 2))));
    t "pow" (fun () ->
        Alcotest.check check_bi "2^100"
          (Bigint.of_string "1267650600228229401496703205376")
          (Bigint.pow (Bigint.of_int 2) 100);
        Alcotest.check check_bi "x^0" Bigint.one (Bigint.pow (Bigint.of_int 7) 0));
    t "pow negative exponent raises" (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Bigint.pow: negative exponent")
          (fun () -> ignore (Bigint.pow (Bigint.of_int 2) (-1))));
    t "gcd and lcm" (fun () ->
        Alcotest.(check int) "gcd" 6
          (Bigint.to_int (Bigint.gcd (Bigint.of_int 12) (Bigint.of_int (-18))));
        Alcotest.(check int) "lcm" 36
          (Bigint.to_int (Bigint.lcm (Bigint.of_int 12) (Bigint.of_int 18)));
        Alcotest.(check int) "gcd00" 0
          (Bigint.to_int (Bigint.gcd Bigint.zero Bigint.zero)));
    t "to_int overflow detection" (fun () ->
        let big = Bigint.mul (Bigint.of_int max_int) (Bigint.of_int 2) in
        Alcotest.(check (option int)) "none" None (Bigint.to_int_opt big));
    t "num_bits known values" (fun () ->
        List.iter
          (fun (n, b) ->
            Alcotest.(check int) (string_of_int n) b
              (Bigint.num_bits (Bigint.of_int n)))
          [ (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (255, 8); (256, 9); (-256, 9) ];
        Alcotest.(check int) "2^100" 101
          (Bigint.num_bits (Bigint.pow (Bigint.of_int 2) 100)));
    t "to_float exact powers of two" (fun () ->
        Alcotest.(check (float 0.)) "2^100" (ldexp 1. 100)
          (Bigint.to_float (Bigint.pow (Bigint.of_int 2) 100));
        Alcotest.(check (float 0.)) "-2^70"
          (-.ldexp 1. 70)
          (Bigint.to_float (Bigint.neg (Bigint.pow (Bigint.of_int 2) 70))));
    t "to_float saturates beyond float range" (fun () ->
        let huge = Bigint.pow (Bigint.of_int 10) 400 in
        Alcotest.(check bool) "inf" true (Bigint.to_float huge = infinity);
        Alcotest.(check bool) "-inf" true
          (Bigint.to_float (Bigint.neg huge) = neg_infinity));
    t "comparisons" (fun () ->
        let a = Bigint.of_int (-5) and b = Bigint.of_int 3 in
        Alcotest.(check bool) "lt" true (Bigint.lt a b);
        Alcotest.(check bool) "le" true (Bigint.le a a);
        Alcotest.(check bool) "gt" true (Bigint.gt b a);
        Alcotest.check check_bi "min" a (Bigint.min a b);
        Alcotest.check check_bi "max" b (Bigint.max a b));
  ]

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let property_tests =
  [
    prop "add commutative" 300
      (QCheck.pair arb_big arb_big)
      (fun (a, b) -> Bigint.equal (Bigint.add a b) (Bigint.add b a));
    prop "add associative" 300
      (QCheck.triple arb_big arb_big arb_big)
      (fun (a, b, c) ->
        Bigint.equal
          (Bigint.add (Bigint.add a b) c)
          (Bigint.add a (Bigint.add b c)));
    prop "mul distributes over add" 300
      (QCheck.triple arb_big arb_big arb_big)
      (fun (a, b, c) ->
        Bigint.equal
          (Bigint.mul a (Bigint.add b c))
          (Bigint.add (Bigint.mul a b) (Bigint.mul a c)));
    prop "sub then add roundtrip" 300
      (QCheck.pair arb_big arb_big)
      (fun (a, b) -> Bigint.equal a (Bigint.add (Bigint.sub a b) b));
    prop "divmod reconstruction" 300
      (QCheck.pair arb_big arb_big)
      (fun (a, b) ->
        QCheck.assume (not (Bigint.is_zero b));
        let q, r = Bigint.divmod a b in
        Bigint.equal a (Bigint.add (Bigint.mul q b) r)
        && Bigint.lt (Bigint.abs r) (Bigint.abs b));
    prop "string roundtrip" 300 arb_big (fun a ->
        Bigint.equal a (Bigint.of_string (Bigint.to_string a)));
    prop "gcd divides both" 300
      (QCheck.pair arb_big arb_big)
      (fun (a, b) ->
        let g = Bigint.gcd a b in
        QCheck.assume (not (Bigint.is_zero g));
        Bigint.is_zero (Bigint.rem a g) && Bigint.is_zero (Bigint.rem b g));
    prop "compare antisymmetric" 300
      (QCheck.pair arb_big arb_big)
      (fun (a, b) -> Bigint.compare a b = -Bigint.compare b a);
    prop "num_bits brackets the magnitude" 300 arb_big (fun a ->
        QCheck.assume (not (Bigint.is_zero a));
        let b = Bigint.num_bits a in
        let lo = Bigint.pow (Bigint.of_int 2) (b - 1)
        and hi = Bigint.pow (Bigint.of_int 2) b in
        Bigint.le lo (Bigint.abs a) && Bigint.lt (Bigint.abs a) hi);
    prop "to_float matches decimal reference" 300 arb_big (fun a ->
        let f = Bigint.to_float a
        and r = float_of_string (Bigint.to_string a) in
        if r = 0. then f = 0. else abs_float (f -. r) <= 1e-9 *. abs_float r);
    prop "ediv/emod invariant" 300
      (QCheck.pair arb_big arb_big)
      (fun (a, b) ->
        QCheck.assume (not (Bigint.is_zero b));
        let q = Bigint.ediv a b and r = Bigint.emod a b in
        Bigint.equal a (Bigint.add (Bigint.mul q b) r)
        && Bigint.ge r Bigint.zero
        && Bigint.lt r (Bigint.abs b));
  ]

let suite = unit_tests @ property_tests
