let () =
  Alcotest.run "streamit_gpu"
    [
      ("bigint", Test_bigint.suite);
      ("rat", Test_rat.suite);
      ("intmath", Test_intmath.suite);
      ("lp", Test_lp.suite);
      ("streamit", Test_streamit.suite);
      ("gpusim", Test_gpusim.suite);
      ("swp_core", Test_swp_core.suite);
      ("cudagen", Test_cudagen.suite);
      ("frontend", Test_frontend.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("funcsim", Test_funcsim.suite);
      ("stateful", Test_stateful.suite);
      ("obs", Test_obs.suite);
      ("check", Test_check.suite);
      ("par", Test_par.suite);
      ("resil", Test_resil.suite);
      ("clock", Test_clock.suite);
      ("cache", Test_cache.suite);
      ("serve_guard", Test_guard.suite);
      ("kir", Test_kir.suite);
      ("quality", Test_quality.suite);
      ("determinism", Test_determinism.suite);
      ("report", Test_report.suite);
    ]
